module G = Dls_graph.Graph

type backbone = { bw : float; max_connect : int }

type cluster = { speed : float; local_bw : float; router : int }

type t = {
  clusters : cluster array;
  topology : G.t;
  backbones : backbone array;
  routes : int list option array array;  (* [k].[l] -> backbone ids *)
}

let check_inputs ~clusters ~topology ~backbones =
  if Array.length backbones <> G.num_edges topology then
    invalid_arg "Platform.make: one backbone descriptor per topology edge required";
  Array.iteri
    (fun k c ->
      if c.speed < 0.0 then
        invalid_arg (Printf.sprintf "Platform.make: cluster %d has negative speed" k);
      if c.local_bw < 0.0 then
        invalid_arg (Printf.sprintf "Platform.make: cluster %d has negative local_bw" k);
      if c.router < 0 || c.router >= G.num_nodes topology then
        invalid_arg (Printf.sprintf "Platform.make: cluster %d references bad router" k))
    clusters;
  Array.iteri
    (fun i b ->
      if b.bw <= 0.0 then
        invalid_arg (Printf.sprintf "Platform.make: backbone %d has non-positive bw" i);
      if b.max_connect < 0 then
        invalid_arg (Printf.sprintf "Platform.make: backbone %d has negative max_connect" i))
    backbones

(* Validates that [links] is a path of backbone edges from router [src]
   to router [dst]; returns unit or raises. *)
let check_route topology ~src ~dst links =
  let pos = ref src in
  List.iter
    (fun e ->
      if e < 0 || e >= G.num_edges topology then
        invalid_arg "Platform: route references unknown backbone link";
      let u, v = G.endpoints topology e in
      if u = !pos then pos := v
      else if v = !pos then pos := u
      else invalid_arg "Platform: route is not a connected path")
    links;
  if !pos <> dst then invalid_arg "Platform: route does not reach the destination router"

let compute_routes ~clusters ~topology =
  let kk = Array.length clusters in
  let routes = Array.make_matrix kk kk None in
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if k = l then routes.(k).(l) <- Some []
      else begin
        match
          G.shortest_path topology ~src:clusters.(k).router ~dst:clusters.(l).router
        with
        | Some (_, edge_ids) -> routes.(k).(l) <- Some edge_ids
        | None -> routes.(k).(l) <- None
      end
    done
  done;
  routes

let make_with_routes ~clusters ~topology ~backbones ~routes:overrides =
  check_inputs ~clusters ~topology ~backbones;
  let routes = compute_routes ~clusters ~topology in
  let kk = Array.length clusters in
  List.iter
    (fun (k, l, links) ->
      if k < 0 || k >= kk || l < 0 || l >= kk then
        invalid_arg "Platform.make_with_routes: bad cluster index in override";
      check_route topology ~src:clusters.(k).router ~dst:clusters.(l).router links;
      routes.(k).(l) <- Some links)
    overrides;
  { clusters; topology; backbones; routes }

let make ~clusters ~topology ~backbones =
  make_with_routes ~clusters ~topology ~backbones ~routes:[]

let num_clusters t = Array.length t.clusters
let num_routers t = G.num_nodes t.topology
let num_backbones t = Array.length t.backbones

let cluster t k =
  if k < 0 || k >= num_clusters t then invalid_arg "Platform.cluster: bad index";
  t.clusters.(k)

let backbone t i =
  if i < 0 || i >= num_backbones t then invalid_arg "Platform.backbone: bad index";
  t.backbones.(i)

let topology t = t.topology

let speed t k = (cluster t k).speed
let local_bw t k = (cluster t k).local_bw

let route t k l =
  if k < 0 || k >= num_clusters t || l < 0 || l >= num_clusters t then
    invalid_arg "Platform.route: bad cluster index";
  t.routes.(k).(l)

let route_bottleneck t k l =
  match route t k l with
  | None -> None
  | Some [] -> Some infinity
  | Some links ->
    Some (List.fold_left (fun acc e -> Float.min acc t.backbones.(e).bw) infinity links)

let routes_through t link =
  if link < 0 || link >= num_backbones t then
    invalid_arg "Platform.routes_through: bad link";
  let kk = num_clusters t in
  let acc = ref [] in
  for k = kk - 1 downto 0 do
    for l = kk - 1 downto 0 do
      if k <> l then begin
        match t.routes.(k).(l) with
        | Some links when List.mem link links -> acc := (k, l) :: !acc
        | Some _ | None -> ()
      end
    done
  done;
  !acc

let total_speed t = Array.fold_left (fun s c -> s +. c.speed) 0.0 t.clusters

let validate t =
  try
    check_inputs ~clusters:t.clusters ~topology:t.topology ~backbones:t.backbones;
    let kk = num_clusters t in
    if Array.length t.routes <> kk then failwith "route table has wrong row count";
    for k = 0 to kk - 1 do
      if Array.length t.routes.(k) <> kk then failwith "route table has wrong column count";
      for l = 0 to kk - 1 do
        match t.routes.(k).(l) with
        | None -> if k = l then failwith "missing self route"
        | Some links ->
          check_route t.topology ~src:t.clusters.(k).router
            ~dst:t.clusters.(l).router links
      done
    done;
    Ok ()
  with
  | Invalid_argument msg | Failure msg -> Error msg

let pp fmt t =
  Format.fprintf fmt "@[<v>platform: %d clusters, %d routers, %d backbones@,"
    (num_clusters t) (num_routers t) (num_backbones t);
  Array.iteri
    (fun k c ->
      Format.fprintf fmt "  C%d: s=%g g=%g router=%d@," k c.speed c.local_bw c.router)
    t.clusters;
  Array.iteri
    (fun i b ->
      let u, v = G.endpoints t.topology i in
      Format.fprintf fmt "  l%d: %d--%d bw=%g maxcon=%d@," i u v b.bw b.max_connect)
    t.backbones;
  Format.fprintf fmt "@]"
