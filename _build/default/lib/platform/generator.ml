module G = Dls_graph.Graph
module Prng = Dls_util.Prng

type topology_model =
  | Erdos_renyi
  | Waxman of { alpha : float; beta : float }
  | Barabasi_albert of { m : int }

type params = {
  k : int;
  topology_model : topology_model;
  connectivity : float;
  heterogeneity : float;
  mean_g : float;
  mean_bw : float;
  mean_maxcon : float;
  speed : float;
  speed_heterogeneity : float;
}

let default_params =
  { k = 15; topology_model = Erdos_renyi; connectivity = 0.4;
    heterogeneity = 0.4; mean_g = 250.0; mean_bw = 50.0; mean_maxcon = 45.0;
    speed = 100.0; speed_heterogeneity = 0.0 }

let table1_grid () =
  let ks = List.init 10 (fun i -> 5 + (10 * i)) in
  let connectivities = List.init 8 (fun i -> 0.1 *. float_of_int (i + 1)) in
  let heterogeneities = [ 0.2; 0.4; 0.6; 0.8 ] in
  let gs = [ 50.0; 250.0; 350.0; 450.0 ] in
  let bws = List.init 9 (fun i -> 10.0 *. float_of_int (i + 1)) in
  let maxcons = List.init 10 (fun i -> float_of_int (5 + (10 * i))) in
  List.concat_map
    (fun k ->
      List.concat_map
        (fun connectivity ->
          List.concat_map
            (fun heterogeneity ->
              List.concat_map
                (fun mean_g ->
                  List.concat_map
                    (fun mean_bw ->
                      List.map
                        (fun mean_maxcon ->
                          { k; topology_model = Erdos_renyi; connectivity;
                            heterogeneity; mean_g; mean_bw; mean_maxcon;
                            speed = 100.0; speed_heterogeneity = 0.0 })
                        maxcons)
                    bws)
                gs)
            heterogeneities)
        connectivities)
    ks

let check p =
  if p.k <= 0 then invalid_arg "Generator.generate: k must be positive";
  if p.heterogeneity < 0.0 || p.heterogeneity >= 1.0 then
    invalid_arg "Generator.generate: heterogeneity must be in [0, 1)";
  if p.mean_g <= 0.0 || p.mean_bw <= 0.0 || p.mean_maxcon <= 0.0 then
    invalid_arg "Generator.generate: means must be positive";
  if p.speed <= 0.0 then invalid_arg "Generator.generate: speed must be positive";
  if p.speed_heterogeneity < 0.0 || p.speed_heterogeneity >= 1.0 then
    invalid_arg "Generator.generate: speed_heterogeneity must be in [0, 1)"

let sample rng ~mean ~heterogeneity =
  Prng.float rng ~lo:(mean *. (1.0 -. heterogeneity))
    ~hi:(mean *. (1.0 +. heterogeneity))

let generate rng p =
  check p;
  (* One router per cluster; direct backbone links drawn from the
     chosen topology model, then bridged to connectivity. *)
  let raw =
    match p.topology_model with
    | Erdos_renyi -> G.gnp rng ~n:p.k ~p:p.connectivity
    | Waxman { alpha; beta } ->
      Dls_graph.Topologies.waxman rng ~n:p.k ~alpha ~beta
    | Barabasi_albert { m } ->
      Dls_graph.Topologies.barabasi_albert rng ~n:p.k ~m
  in
  let topology = G.connect_components rng raw in
  let backbones =
    Array.init (G.num_edges topology) (fun _ ->
        let bw = sample rng ~mean:p.mean_bw ~heterogeneity:p.heterogeneity in
        let maxcon =
          sample rng ~mean:p.mean_maxcon ~heterogeneity:p.heterogeneity
        in
        { Platform.bw; max_connect = Stdlib.max 1 (int_of_float (Float.round maxcon)) })
  in
  let clusters =
    Array.init p.k (fun k ->
        let speed =
          if p.speed_heterogeneity = 0.0 then p.speed
          else sample rng ~mean:p.speed ~heterogeneity:p.speed_heterogeneity
        in
        { Platform.speed;
          local_bw = sample rng ~mean:p.mean_g ~heterogeneity:p.heterogeneity;
          router = k })
  in
  Platform.make ~clusters ~topology ~backbones

let pp_params fmt p =
  Format.fprintf fmt
    "k=%d connectivity=%g heterogeneity=%g g=%g bw=%g maxcon=%g speed=%g(+-%g%%)"
    p.k p.connectivity p.heterogeneity p.mean_g p.mean_bw p.mean_maxcon p.speed
    (100.0 *. p.speed_heterogeneity)
