lib/platform/equivalence.mli:
