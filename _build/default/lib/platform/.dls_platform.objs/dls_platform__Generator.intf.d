lib/platform/generator.mli: Dls_util Format Platform
