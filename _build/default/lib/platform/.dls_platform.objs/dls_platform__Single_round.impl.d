lib/platform/single_round.ml: Array Float Fun List
