lib/platform/platform_io.mli: Format Platform
