lib/platform/platform_io.mli: Platform
