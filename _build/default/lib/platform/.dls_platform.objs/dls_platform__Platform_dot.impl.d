lib/platform/platform_dot.ml: Buffer Dls_graph Fun Platform Printf
