lib/platform/platform_dot.mli: Platform
