lib/platform/equivalence.ml: Float List
