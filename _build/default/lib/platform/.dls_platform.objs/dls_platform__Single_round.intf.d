lib/platform/single_round.mli:
