lib/platform/platform.ml: Array Dls_graph Float Format List Printf
