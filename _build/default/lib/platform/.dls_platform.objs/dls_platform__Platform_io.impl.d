lib/platform/platform_io.ml: Array Buffer Dls_graph Format Fun In_channel List Option Platform Printf String
