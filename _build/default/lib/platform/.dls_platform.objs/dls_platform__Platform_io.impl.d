lib/platform/platform_io.ml: Array Buffer Dls_graph Fun In_channel List Option Platform Printf String
