lib/platform/generator.ml: Array Dls_graph Dls_util Float Format List Platform Stdlib
