lib/platform/platform.mli: Dls_graph Format
