type worker = { bandwidth : float; speed : float }

type plan = {
  chunks : (int * float) list;
  makespan : float;
  finish_times : float array;
}

let check_workers workers =
  if Array.length workers = 0 then invalid_arg "Single_round: no workers";
  Array.iter
    (fun w ->
      if w.bandwidth <= 0.0 || w.speed <= 0.0 then
        invalid_arg "Single_round: worker rates must be positive")
    workers

let simulate ?(master_speed = 0.0) workers chunks =
  let n = Array.length workers in
  let port = ref 0.0 in
  let ready = Array.make n 0.0 in
  let master_ready = ref 0.0 in
  List.iter
    (fun (i, amount) ->
      if amount < 0.0 then invalid_arg "Single_round.simulate: negative amount";
      if amount > 0.0 then begin
        if i = -1 then begin
          if master_speed <= 0.0 then
            invalid_arg "Single_round.simulate: master chunk without master speed";
          (* The master computes its own share without using the port. *)
          master_ready := !master_ready +. (amount /. master_speed)
        end
        else if i < 0 || i >= n then
          invalid_arg "Single_round.simulate: bad worker index"
        else begin
          let arrival = !port +. (amount /. workers.(i).bandwidth) in
          port := arrival;
          let start = Float.max arrival ready.(i) in
          ready.(i) <- start +. (amount /. workers.(i).speed)
        end
      end)
    chunks;
  let makespan = Array.fold_left Float.max !master_ready ready in
  { chunks; makespan; finish_times = Array.copy ready }

(* Equal-finish-time fractions for a given service order (time-per-unit
   notation: z = 1/bandwidth, w = 1/speed):
   alpha_{next} = alpha_prev * w_prev / (z_next + w_next). *)
let fractions_for_order workers order =
  let m = Array.length order in
  let unnormalized = Array.make m 0.0 in
  unnormalized.(0) <- 1.0;
  for p = 1 to m - 1 do
    let prev = workers.(order.(p - 1)) and cur = workers.(order.(p)) in
    let w_prev = 1.0 /. prev.speed in
    let z_cur = 1.0 /. cur.bandwidth and w_cur = 1.0 /. cur.speed in
    unnormalized.(p) <- unnormalized.(p - 1) *. w_prev /. (z_cur +. w_cur)
  done;
  unnormalized

let plan_for_order ?(master_speed = 0.0) workers ~load order =
  let unnormalized = fractions_for_order workers order in
  let first = workers.(order.(0)) in
  (* Common finish time of the unnormalized solution. *)
  let t_unnormalized =
    unnormalized.(0) *. ((1.0 /. first.bandwidth) +. (1.0 /. first.speed))
  in
  let master_fraction =
    if master_speed > 0.0 then t_unnormalized *. master_speed else 0.0
  in
  let total = master_fraction +. Array.fold_left ( +. ) 0.0 unnormalized in
  let scale = load /. total in
  let chunks =
    (if master_fraction > 0.0 then [ (-1, master_fraction *. scale) ] else [])
    @ List.mapi (fun p i -> (i, unnormalized.(p) *. scale)) (Array.to_list order)
  in
  simulate ~master_speed workers chunks

let distribute ?(master_speed = 0.0) ~load workers =
  check_workers workers;
  if load <= 0.0 then invalid_arg "Single_round.distribute: non-positive load";
  if master_speed < 0.0 then
    invalid_arg "Single_round.distribute: negative master speed";
  let order =
    Array.init (Array.length workers) Fun.id
  in
  Array.sort
    (fun a b -> Float.compare workers.(b).bandwidth workers.(a).bandwidth)
    order;
  plan_for_order ~master_speed workers ~load order

let multi_installment ?(master_speed = 0.0) ~load ~rounds workers =
  if rounds < 1 then invalid_arg "Single_round.multi_installment: rounds < 1";
  let single = distribute ~master_speed ~load workers in
  if rounds = 1 then single
  else begin
    (* Same per-worker totals, served as [rounds] round-robin
       installments, so computation starts earlier everywhere. *)
    let per_round =
      List.map (fun (i, a) -> (i, a /. float_of_int rounds)) single.chunks
    in
    let chunks =
      List.concat (List.init rounds (fun _ -> per_round))
    in
    simulate ~master_speed workers chunks
  end
