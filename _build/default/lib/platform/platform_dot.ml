module G = Dls_graph.Graph

let to_dot p =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "graph platform {\n";
  add "  rankdir=LR;\n";
  add "  node [fontsize=10];\n";
  for r = 0 to Platform.num_routers p - 1 do
    add "  r%d [shape=circle, label=\"R%d\", width=0.3];\n" r r
  done;
  for k = 0 to Platform.num_clusters p - 1 do
    let c = Platform.cluster p k in
    add
      "  c%d [shape=box, style=filled, fillcolor=\"%s\", label=\"C%d\\ns=%g g=%g\"];\n"
      k
      (if c.Platform.speed > 0.0 then "#dbeafe" else "#fde68a")
      k c.Platform.speed c.Platform.local_bw;
    add "  c%d -- r%d [style=dashed];\n" k c.Platform.router
  done;
  for i = 0 to Platform.num_backbones p - 1 do
    let u, v = G.endpoints (Platform.topology p) i in
    let b = Platform.backbone p i in
    add "  r%d -- r%d [label=\"l%d bw=%g cap=%d\"];\n" u v i b.Platform.bw
      b.Platform.max_connect
  done;
  add "}\n";
  Buffer.contents buf

let save ~path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot p))
