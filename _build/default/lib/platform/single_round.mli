(** Classical single-cluster divisible-load distribution.

    The paper stands on closed-form divisible-load theory for bus/star
    networks (its references [6], [30], [5]): a master holding [load]
    units serves workers over a one-port link, each worker computing as
    soon as its chunk arrives, and the optimal schedule makes everyone
    finish simultaneously.  This module provides those classical
    results — they complement {!Equivalence} (which only aggregates
    steady-state speed) by producing actual distribution {e plans} for
    one shot of work inside a cluster:

    - {!distribute}: the optimal single-round plan, serving workers in
      decreasing bandwidth order with the equal-finish-time recurrence;
    - {!multi_installment}: the multi-round refinement — splitting each
      worker's share over [rounds] installments starts computation
      earlier and shortens the makespan;
    - {!simulate}: an independent one-port event simulation used to
      price any chunk sequence (and to cross-check the closed forms in
      the tests). *)

type worker = {
  bandwidth : float;  (** link rate from the master, load units/time; > 0 *)
  speed : float;  (** compute rate, load units/time; > 0 *)
}

type plan = {
  chunks : (int * float) list;
  (** transmission sequence: (worker index, load amount) in send order *)
  makespan : float;
  finish_times : float array;  (** per worker *)
}

val simulate : ?master_speed:float -> worker array -> (int * float) list -> plan
(** Price a chunk sequence under one-port semantics: the master sends
    chunks back to back (a chunk for worker [i] takes [amount /
    bandwidth_i]); each worker computes its received chunks in arrival
    order.  With [master_speed > 0] the master also computes the chunks
    sent to the pseudo-index [-1].
    @raise Invalid_argument on bad worker indices or negative amounts. *)

val distribute :
  ?master_speed:float -> load:float -> worker array -> plan
(** Optimal single-round plan: bandwidth-descending service order and
    the equal-finish recurrence
    [alpha_{i+1} = alpha_i * w_i / (z_{i+1} + w_{i+1})] (in time-per-unit
    notation).  All finish times coincide (up to float noise; tested).
    @raise Invalid_argument on non-positive load, empty workers, or
    non-positive rates. *)

val multi_installment :
  ?master_speed:float -> load:float -> rounds:int -> worker array -> plan
(** The single-round proportions split into [rounds] equal installments
    served round-robin — computation overlaps communication sooner, so
    the makespan is never worse than {!distribute}'s (tested).
    @raise Invalid_argument if [rounds < 1]. *)
