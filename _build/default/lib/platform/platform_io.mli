(** Plain-text serialization of platforms.

    A simple line-oriented format so that interesting platforms (or ones
    measured from a real testbed, the paper's stated next step) can be
    saved, versioned and fed back to the CLI tools:

    {v
dls-platform 1
routers 3
cluster <speed> <local_bw> <router>      # one line per cluster, in index order
backbone <u> <v> <bw> <max_connect>      # one line per link, in id order
route <k> <l> <link-id> ...              # full routing table
    v}

    Floats are printed with round-trip precision; parsing rebuilds the
    exact platform, including its routing table (comment lines starting
    with [#] and blank lines are ignored). *)

val to_string : Platform.t -> string

type parse_error = {
  line : int;  (** 1-based line of the offending directive; 0 when the
                   error has no single source line (e.g. a missing
                   [routers] declaration) *)
  message : string;
}

val pp_parse_error : Format.formatter -> parse_error -> unit
(** ["line %d: %s"], or just the message when [line = 0]. *)

val parse : string -> (Platform.t, parse_error) result
(** Structured parsing.  Both lexical errors (malformed directives) and
    semantic ones (router index out of range, non-positive backbone
    bandwidth, a route whose links do not form a path between its
    endpoints, ...) are attributed to the directive that caused them, so
    tools can point at the offending line instead of failing bare. *)

val of_string : string -> (Platform.t, string) result
(** [parse] with the error rendered by {!pp_parse_error}. *)

val save : path:string -> Platform.t -> unit
(** @raise Sys_error on an unwritable path. *)

val load : path:string -> (Platform.t, string) result
