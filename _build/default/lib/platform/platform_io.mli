(** Plain-text serialization of platforms.

    A simple line-oriented format so that interesting platforms (or ones
    measured from a real testbed, the paper's stated next step) can be
    saved, versioned and fed back to the CLI tools:

    {v
dls-platform 1
routers 3
cluster <speed> <local_bw> <router>      # one line per cluster, in index order
backbone <u> <v> <bw> <max_connect>      # one line per link, in id order
route <k> <l> <link-id> ...              # full routing table
    v}

    Floats are printed with round-trip precision; parsing rebuilds the
    exact platform, including its routing table (comment lines starting
    with [#] and blank lines are ignored). *)

val to_string : Platform.t -> string

val of_string : string -> (Platform.t, string) result
(** Parse error messages include the offending line number. *)

val save : path:string -> Platform.t -> unit
(** @raise Sys_error on an unwritable path. *)

val load : path:string -> (Platform.t, string) result
