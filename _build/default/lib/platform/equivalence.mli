(** Steady-state equivalent speed of a cluster's internal network.

    Section 2 of the paper collapses each cluster to a single front-end
    processor: "It is known that [the front-end] and the leaf processors
    are together equivalent to a single processor whose speed [s_k] can
    be determined by classical formulas from divisible load theory", for
    both star-shaped and tree-shaped local networks.  This module
    implements those steady-state formulas so that users can derive the
    [speed] field of {!Platform.cluster} from a description of the
    machines actually present in an institution.

    Model: in steady state, computation overlaps communication.  A child
    reachable through a link of bandwidth [b] contributes at most
    [min b c] where [c] is its own (recursively computed) capacity.
    Under the {e bounded multiport} model the parent forwards to all
    children in parallel but its total egress is capped; under the
    {e one-port} model it serves one child at a time, so forwarding time
    shares a single port. *)

type node = {
  compute : float;  (** local compute speed of this machine *)
  children : (float * node) list;  (** (link bandwidth, subtree) pairs *)
}

val leaf : float -> node
(** A machine with no subtree. *)

val star : root:float -> workers:(float * float) list -> node
(** [star ~root ~workers] where each worker is [(link_bw, speed)]. *)

val multiport_speed : ?egress_cap:float -> node -> float
(** Equivalent steady-state speed when the front-end forwards to all
    children concurrently, its total egress optionally capped.
    @raise Invalid_argument on negative speeds, bandwidths or cap. *)

val one_port_speed : node -> float
(** Equivalent steady-state speed under the one-port model: the root
    serves children sequentially; child [i] served a time fraction [t_i]
    (with [sum t_i <= 1]) contributes [min (t_i * b_i) c_i].  The
    optimum is the fractional-knapsack greedy — serve children in
    decreasing bandwidth order until each saturates or the port is
    exhausted.  (For a single level this recovers the classical bus
    formulas of Bataineh et al., cited as [6] in the paper.)
    @raise Invalid_argument on negative speeds or bandwidths. *)
