(** The multi-cluster Grid platform model of Section 2 of the paper.

    A platform is a set of {e clusters}, each reduced to its front-end
    processor with cumulated speed [s_k] (load units per time unit) and a
    local-area link of capacity [g_k] (load units per time unit, shared
    proportionally among flows), attached to a {e router}.  Routers are
    joined by {e backbone links}, each granting a fixed bandwidth [bw]
    to every connection and capping the number of simultaneous
    connections at [max_connect].  Routing between clusters is fixed:
    [route p k l] is the ordered list of backbone link ids of the path
    used by all cluster-[k] to cluster-[l] traffic.

    Values of this type are immutable; heuristics that consume capacity
    (the greedy allocator) work on their own mutable residual copies. *)

type backbone = {
  bw : float;  (** bandwidth granted to each connection on this link *)
  max_connect : int;  (** cap on simultaneous connections (both directions) *)
}

type cluster = {
  speed : float;  (** cumulated compute speed [s_k] *)
  local_bw : float;  (** local link capacity [g_k] *)
  router : int;  (** index of the attached router in the topology *)
}

type t

val make :
  clusters:cluster array ->
  topology:Dls_graph.Graph.t ->
  backbones:backbone array ->
  t
(** [make ~clusters ~topology ~backbones] assembles a platform; the
    topology's nodes are routers and its edge ids index [backbones].
    Routes are computed once, as minimum-hop router paths with
    deterministic tie-breaking (the paper's routing is fixed but
    otherwise unspecified).
    @raise Invalid_argument if array lengths disagree with the topology,
    a cluster references a missing router, or a parameter is negative. *)

val make_with_routes :
  clusters:cluster array ->
  topology:Dls_graph.Graph.t ->
  backbones:backbone array ->
  routes:(int * int * int list) list ->
  t
(** Like {!make} but with explicit routing-table overrides: each
    [(k, l, links)] entry forces the route from cluster [k] to cluster
    [l] to follow the given backbone link ids (used by the NP-hardness
    gadget, whose routes are part of the reduction).  Unlisted pairs use
    shortest paths.  Overridden routes are validated: the link sequence
    must form a path from [k]'s router to [l]'s router.
    @raise Invalid_argument on an invalid override. *)

val num_clusters : t -> int
val num_routers : t -> int
val num_backbones : t -> int

val cluster : t -> int -> cluster
val backbone : t -> int -> backbone
val topology : t -> Dls_graph.Graph.t

val speed : t -> int -> float
(** [speed p k] is [s_k]. *)

val local_bw : t -> int -> float
(** [local_bw p k] is [g_k]. *)

val route : t -> int -> int -> int list option
(** Backbone link ids from cluster [k] to cluster [l]; [Some \[\]] when
    both clusters share a router (no backbone is crossed) and for
    [k = l]; [None] when no path exists. *)

val route_bottleneck : t -> int -> int -> float option
(** [g_{k,l}]: bandwidth available to one connection from [k] to [l] —
    the minimum [bw] over the route (Equation 4 of the paper).
    [Some infinity] for an empty route, [None] when unreachable. *)

val routes_through : t -> int -> (int * int) list
(** All ordered cluster pairs [(k, l)], [k <> l], whose route crosses the
    given backbone link — the summation domain of Equation 3. *)

val total_speed : t -> float
(** Sum of cluster speeds (an upper bound on aggregate throughput). *)

val validate : t -> (unit, string) result
(** Re-checks every internal invariant (parameter signs, route
    well-formedness); used by property tests and after manual
    construction. *)

val pp : Format.formatter -> t -> unit
