(** Random platform generation following Table 1 of the paper.

    The paper instantiates platforms from six parameters: the number of
    clusters [k]; the probability [connectivity] that any two clusters
    are directly connected; a [heterogeneity] ratio; and mean values for
    the local link capacity [g], the per-connection backbone bandwidth
    [bw], and the backbone connection cap [maxcon].  Each sampled value
    is uniform in [mean * (1 - heterogeneity), mean * (1 + heterogeneity)].
    Cluster speeds are fixed at 100 ("only relative values are meaningful
    in a periodic schedule").

    The paper does not specify how disconnected draws are handled; we
    add uniformly random bridging links (with freshly sampled parameters)
    until the platform is connected, so that every generated instance is
    a usable scheduling problem.  This is recorded in DESIGN.md. *)

type topology_model =
  | Erdos_renyi
  (** the paper's model: each pair joined with probability
      [connectivity] *)
  | Waxman of { alpha : float; beta : float }
  (** geographic short-link bias ({!Dls_graph.Topologies.waxman});
      [connectivity] is ignored *)
  | Barabasi_albert of { m : int }
  (** preferential attachment
      ({!Dls_graph.Topologies.barabasi_albert}); [connectivity] is
      ignored *)

type params = {
  k : int;  (** number of clusters *)
  topology_model : topology_model;  (** how the router graph is drawn *)
  connectivity : float;  (** direct-link probability between cluster pairs *)
  heterogeneity : float;  (** relative spread of sampled parameters *)
  mean_g : float;  (** mean local link capacity *)
  mean_bw : float;  (** mean per-connection backbone bandwidth *)
  mean_maxcon : float;  (** mean backbone connection cap *)
  speed : float;  (** cluster speed, fixed at 100 in the paper *)
  speed_heterogeneity : float;
  (** relative spread of cluster speeds; 0 in the paper ("we fix the
      computing speed at 100"), exposed for the heterogeneous-compute
      ablation *)
}

val default_params : params
(** Mid-grid values: k=15, connectivity=0.4, heterogeneity=0.4, g=250,
    bw=50, maxcon=45, speed=100. *)

val table1_grid : unit -> params list
(** The full Cartesian grid of Table 1:
    K in 5,15,...,95; connectivity in 0.1,...,0.8; heterogeneity in
    0.2,0.4,0.6,0.8; mean g in 50,250,350,450; mean bw in 10,20,...,90;
    mean maxcon in 5,15,...,95 — 115,200 settings.  The paper draws 10
    platforms per setting; callers decide how many to sample. *)

val generate : Dls_util.Prng.t -> params -> Platform.t
(** One random platform.  Deterministic given the generator state.
    @raise Invalid_argument on non-positive [k], means, or speed, or
    [heterogeneity] outside [0, 1). *)

val pp_params : Format.formatter -> params -> unit
