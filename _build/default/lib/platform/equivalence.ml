type node = { compute : float; children : (float * node) list }

let leaf compute = { compute; children = [] }

let star ~root ~workers =
  { compute = root;
    children = List.map (fun (bw, speed) -> (bw, leaf speed)) workers }

let check_node node =
  let rec go n =
    if n.compute < 0.0 then invalid_arg "Equivalence: negative compute speed";
    List.iter
      (fun (bw, child) ->
        if bw < 0.0 then invalid_arg "Equivalence: negative link bandwidth";
        go child)
      n.children
  in
  go node

let rec multiport_capacity ~egress_cap node =
  let from_children =
    List.fold_left
      (fun acc (bw, child) ->
        acc +. Float.min bw (multiport_capacity ~egress_cap child))
      0.0 node.children
  in
  node.compute +. Float.min egress_cap from_children

let multiport_speed ?(egress_cap = infinity) node =
  check_node node;
  if egress_cap < 0.0 then invalid_arg "Equivalence: negative egress cap";
  multiport_capacity ~egress_cap node

(* One-port: over a period, the root sends to child i for a time
   fraction t_i (sum t_i <= 1) at rate b_i; the child absorbs at most
   its own capacity c_i.  Maximizing sum_i min(t_i b_i, c_i) is the
   classical fractional-knapsack greedy: serve children in decreasing
   bandwidth order, each until its capacity saturates (t_i = c_i / b_i)
   or the port runs out. *)
let rec one_port_capacity node =
  let child_caps =
    List.map (fun (bw, child) -> (bw, one_port_capacity child)) node.children
  in
  let sorted =
    List.sort (fun (b1, _) (b2, _) -> Float.compare b2 b1) child_caps
  in
  let from_children =
    let time_left = ref 1.0 and acc = ref 0.0 in
    List.iter
      (fun (bw, cap) ->
        if !time_left > 0.0 && bw > 0.0 then begin
          let t = Float.min (cap /. bw) !time_left in
          time_left := !time_left -. t;
          acc := !acc +. (t *. bw)
        end)
      sorted;
    !acc
  in
  node.compute +. from_children

let one_port_speed node =
  check_node node;
  one_port_capacity node
