module G = Dls_graph.Graph

let to_string p =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "dls-platform 1\n";
  add "routers %d\n" (Platform.num_routers p);
  for k = 0 to Platform.num_clusters p - 1 do
    let c = Platform.cluster p k in
    add "cluster %.17g %.17g %d\n" c.Platform.speed c.Platform.local_bw
      c.Platform.router
  done;
  for i = 0 to Platform.num_backbones p - 1 do
    let u, v = G.endpoints (Platform.topology p) i in
    let b = Platform.backbone p i in
    add "backbone %d %d %.17g %d\n" u v b.Platform.bw b.Platform.max_connect
  done;
  for k = 0 to Platform.num_clusters p - 1 do
    for l = 0 to Platform.num_clusters p - 1 do
      if k <> l then begin
        match Platform.route p k l with
        | Some links ->
          add "route %d %d%s\n" k l
            (String.concat "" (List.map (fun e -> " " ^ string_of_int e) links))
        | None -> ()
      end
    done
  done;
  Buffer.contents buf

type parse_state = {
  mutable routers : int option;
  mutable clusters : Platform.cluster list;  (* reversed *)
  mutable backbones : (int * int * Platform.backbone) list;  (* reversed *)
  mutable routes : (int * int * int list) list;  (* reversed *)
}

let of_string text =
  let state =
    { routers = None; clusters = []; backbones = []; routes = [] }
  in
  let exception Parse_error of int * string in
  let fail line msg = raise (Parse_error (line, msg)) in
  try
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "dls-platform"; "1" ] -> ()
          | "dls-platform" :: _ -> fail lineno "unsupported format version"
          | [ "routers"; n ] -> begin
            match int_of_string_opt n with
            | Some n when n >= 0 -> state.routers <- Some n
            | _ -> fail lineno "bad router count"
          end
          | [ "cluster"; speed; local_bw; router ] -> begin
            match
              (float_of_string_opt speed, float_of_string_opt local_bw,
               int_of_string_opt router)
            with
            | Some speed, Some local_bw, Some router ->
              state.clusters <-
                { Platform.speed; local_bw; router } :: state.clusters
            | _ -> fail lineno "bad cluster line"
          end
          | [ "backbone"; u; v; bw; maxcon ] -> begin
            match
              (int_of_string_opt u, int_of_string_opt v, float_of_string_opt bw,
               int_of_string_opt maxcon)
            with
            | Some u, Some v, Some bw, Some max_connect ->
              state.backbones <-
                (u, v, { Platform.bw; max_connect }) :: state.backbones
            | _ -> fail lineno "bad backbone line"
          end
          | "route" :: k :: l :: links -> begin
            let ints = List.map int_of_string_opt (k :: l :: links) in
            if List.exists (( = ) None) ints then fail lineno "bad route line"
            else begin
              match List.map Option.get ints with
              | k :: l :: links -> state.routes <- (k, l, links) :: state.routes
              | _ -> fail lineno "bad route line"
            end
          end
          | token :: _ -> fail lineno (Printf.sprintf "unknown directive %S" token)
          | [] -> ()
        end)
      lines;
    let routers =
      match state.routers with
      | Some n -> n
      | None -> fail 0 "missing 'routers' line"
    in
    let backbones = List.rev state.backbones in
    let topology =
      G.create ~n:routers ~edges:(List.map (fun (u, v, _) -> (u, v)) backbones)
    in
    let platform =
      Platform.make_with_routes
        ~clusters:(Array.of_list (List.rev state.clusters))
        ~topology
        ~backbones:(Array.of_list (List.map (fun (_, _, b) -> b) backbones))
        ~routes:(List.rev state.routes)
    in
    Ok platform
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let save ~path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
