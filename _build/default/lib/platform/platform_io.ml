module G = Dls_graph.Graph

let to_string p =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "dls-platform 1\n";
  add "routers %d\n" (Platform.num_routers p);
  for k = 0 to Platform.num_clusters p - 1 do
    let c = Platform.cluster p k in
    add "cluster %.17g %.17g %d\n" c.Platform.speed c.Platform.local_bw
      c.Platform.router
  done;
  for i = 0 to Platform.num_backbones p - 1 do
    let u, v = G.endpoints (Platform.topology p) i in
    let b = Platform.backbone p i in
    add "backbone %d %d %.17g %d\n" u v b.Platform.bw b.Platform.max_connect
  done;
  for k = 0 to Platform.num_clusters p - 1 do
    for l = 0 to Platform.num_clusters p - 1 do
      if k <> l then begin
        match Platform.route p k l with
        | Some links ->
          add "route %d %d%s\n" k l
            (String.concat "" (List.map (fun e -> " " ^ string_of_int e) links))
        | None -> ()
      end
    done
  done;
  Buffer.contents buf

type parse_error = { line : int; message : string }

let pp_parse_error fmt e =
  if e.line > 0 then Format.fprintf fmt "line %d: %s" e.line e.message
  else Format.pp_print_string fmt e.message

type parse_state = {
  mutable routers : int option;
  (* each directive keeps the line it came from, so semantic validation
     (after the whole file is read) can still point at the culprit *)
  mutable clusters : (int * Platform.cluster) list;  (* reversed *)
  mutable backbones : (int * (int * int * Platform.backbone)) list;  (* reversed *)
  mutable routes : (int * (int * int * int list)) list;  (* reversed *)
}

let parse text =
  let state = { routers = None; clusters = []; backbones = []; routes = [] } in
  let exception Fail of parse_error in
  let fail line message = raise (Fail { line; message }) in
  try
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "dls-platform"; "1" ] -> ()
          | "dls-platform" :: _ -> fail lineno "unsupported format version"
          | [ "routers"; n ] -> begin
            match int_of_string_opt n with
            | Some n when n >= 0 -> state.routers <- Some n
            | _ -> fail lineno "bad router count"
          end
          | [ "cluster"; speed; local_bw; router ] -> begin
            match
              (float_of_string_opt speed, float_of_string_opt local_bw,
               int_of_string_opt router)
            with
            | Some speed, Some local_bw, Some router ->
              state.clusters <-
                (lineno, { Platform.speed; local_bw; router }) :: state.clusters
            | _ -> fail lineno "bad cluster line"
          end
          | [ "backbone"; u; v; bw; maxcon ] -> begin
            match
              (int_of_string_opt u, int_of_string_opt v, float_of_string_opt bw,
               int_of_string_opt maxcon)
            with
            | Some u, Some v, Some bw, Some max_connect ->
              state.backbones <-
                (lineno, (u, v, { Platform.bw; max_connect })) :: state.backbones
            | _ -> fail lineno "bad backbone line"
          end
          | "route" :: k :: l :: links -> begin
            let ints = List.map int_of_string_opt (k :: l :: links) in
            if List.exists (( = ) None) ints then fail lineno "bad route line"
            else begin
              match List.map Option.get ints with
              | k :: l :: links ->
                state.routes <- (lineno, (k, l, links)) :: state.routes
              | _ -> fail lineno "bad route line"
            end
          end
          | token :: _ -> fail lineno (Printf.sprintf "unknown directive %S" token)
          | [] -> ()
        end)
      lines;
    let routers =
      match state.routers with
      | Some n -> n
      | None -> fail 0 "missing 'routers' line"
    in
    let clusters = List.rev state.clusters in
    let backbones = List.rev state.backbones in
    let routes = List.rev state.routes in
    let num_clusters = List.length clusters in
    let num_backbones = List.length backbones in
    (* Semantic validation with line attribution — the same invariants
       [Platform.make_with_routes] enforces, checked here first so the
       error points at the offending directive instead of a bare
       [Invalid_argument]. *)
    List.iter
      (fun (lineno, c) ->
        if c.Platform.router < 0 || c.Platform.router >= routers then
          fail lineno
            (Printf.sprintf "cluster router %d outside [0, %d)"
               c.Platform.router routers);
        if not (c.Platform.speed >= 0.0) then fail lineno "negative cluster speed";
        if not (c.Platform.local_bw >= 0.0) then
          fail lineno "negative cluster local bandwidth")
      clusters;
    List.iter
      (fun (lineno, (u, v, b)) ->
        if u < 0 || u >= routers || v < 0 || v >= routers then
          fail lineno
            (Printf.sprintf "backbone endpoints (%d, %d) outside [0, %d)" u v
               routers);
        if not (b.Platform.bw > 0.0) then
          fail lineno "backbone bandwidth must be positive";
        if b.Platform.max_connect < 0 then
          fail lineno "negative backbone max_connect")
      backbones;
    let backbone_arr = Array.of_list (List.map snd backbones) in
    let cluster_arr = Array.of_list (List.map snd clusters) in
    List.iter
      (fun (lineno, (k, l, links)) ->
        if k < 0 || k >= num_clusters || l < 0 || l >= num_clusters then
          fail lineno
            (Printf.sprintf "route endpoints (%d, %d) outside [0, %d)" k l
               num_clusters);
        List.iter
          (fun e ->
            if e < 0 || e >= num_backbones then
              fail lineno
                (Printf.sprintf "route link id %d outside [0, %d)" e
                   num_backbones))
          links;
        (* The link sequence must walk from k's router to l's router. *)
        let at = ref cluster_arr.(k).Platform.router in
        List.iter
          (fun e ->
            let u, v, _ = backbone_arr.(e) in
            if u = !at then at := v
            else if v = !at then at := u
            else
              fail lineno
                (Printf.sprintf "route link %d does not touch router %d" e !at))
          links;
        if !at <> cluster_arr.(l).Platform.router then
          fail lineno
            (Printf.sprintf "route ends at router %d, not cluster %d's router %d"
               !at l cluster_arr.(l).Platform.router))
      routes;
    let topology =
      G.create ~n:routers
        ~edges:(List.map (fun (_, (u, v, _)) -> (u, v)) backbones)
    in
    let platform =
      Platform.make_with_routes ~clusters:cluster_arr ~topology
        ~backbones:(Array.map (fun (_, _, b) -> b) backbone_arr)
        ~routes:(List.map snd routes)
    in
    Ok platform
  with
  | Fail e -> Error e
  | Invalid_argument message -> Error { line = 0; message }

let of_string text =
  match parse text with
  | Ok p -> Ok p
  | Error e -> Error (Format.asprintf "%a" pp_parse_error e)

let save ~path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
