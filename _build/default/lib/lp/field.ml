module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val tolerance : t
  val pp : Format.formatter -> t -> unit
end

module Float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let of_float f = f
  let to_float f = f
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg = Float.neg
  let abs = Float.abs
  let compare = Float.compare
  let equal = Float.equal
  let tolerance = 1e-9
  let pp fmt f = Format.fprintf fmt "%g" f
end

module Exact = struct
  module Q = Dls_num.Rat

  type t = Q.t

  let zero = Q.zero
  let one = Q.one
  let of_int = Q.of_int
  let of_float = Q.of_float
  let to_float = Q.to_float
  let add = Q.add
  let sub = Q.sub
  let mul = Q.mul
  let div = Q.div
  let neg = Q.neg
  let abs = Q.abs
  let compare = Q.compare
  let equal = Q.equal
  let tolerance = Q.zero
  let pp = Q.pp
end
