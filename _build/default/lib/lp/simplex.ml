module Make (F : Field.S) = struct
  type cmp = Le | Ge | Eq

  type constr = { coeffs : (int * F.t) list; cmp : cmp; rhs : F.t }

  type problem = {
    num_vars : int;
    maximize : (int * F.t) list;
    rows : constr list;
  }

  type status = Optimal | Infeasible | Unbounded | Iteration_limit

  type solution = {
    status : status;
    objective : F.t;
    values : F.t array;
    duals : F.t array;
    iterations : int;
  }

  let neg_tol = F.neg F.tolerance
  let is_pos v = F.compare v F.tolerance > 0
  let is_neg v = F.compare v neg_tol < 0
  let is_nonzero v = is_pos v || is_neg v

  (* Mutable solver state: [tab] is the m x (ncols+1) tableau with the
     right-hand side in the last column; [basis.(i)] is the column basic
     in row [i]. *)
  type state = {
    tab : F.t array array;
    basis : int array;
    m : int;
    ncols : int;
    art_start : int;  (* columns >= art_start are artificial *)
  }

  let pivot st obj_row r c =
    let row_r = st.tab.(r) in
    let piv = row_r.(c) in
    if not (F.equal piv F.one) then begin
      let inv = F.div F.one piv in
      for j = 0 to st.ncols do
        if is_nonzero row_r.(j) then row_r.(j) <- F.mul row_r.(j) inv
        else row_r.(j) <- F.zero
      done;
      row_r.(c) <- F.one
    end;
    let eliminate row =
      let f = row.(c) in
      if is_nonzero f then begin
        for j = 0 to st.ncols do
          if is_nonzero row_r.(j) then row.(j) <- F.sub row.(j) (F.mul f row_r.(j))
        done;
        row.(c) <- F.zero
      end
    in
    for i = 0 to st.m - 1 do
      if i <> r then eliminate st.tab.(i)
    done;
    eliminate obj_row;
    st.basis.(r) <- c

  (* Entering column by Dantzig's rule (largest positive reduced cost),
     or Bland's rule (smallest admissible index) when [bland] is set. *)
  let entering st obj_row ~allowed ~bland =
    if bland then begin
      let rec find j =
        if j >= st.ncols then None
        else if allowed j && is_pos obj_row.(j) then Some j
        else find (j + 1)
      in
      find 0
    end
    else begin
      let best = ref (-1) and best_v = ref F.tolerance in
      for j = 0 to st.ncols - 1 do
        if allowed j && F.compare obj_row.(j) !best_v > 0 then begin
          best := j;
          best_v := obj_row.(j)
        end
      done;
      if !best < 0 then None else Some !best
    end

  (* Minimum-ratio test; ties broken by smallest basis column, which
     together with Bland's entering rule prevents cycling. *)
  let leaving st c =
    let best = ref (-1) and best_ratio = ref F.zero in
    for i = 0 to st.m - 1 do
      let a = st.tab.(i).(c) in
      if is_pos a then begin
        let ratio = F.div st.tab.(i).(st.ncols) a in
        if
          !best < 0
          || F.compare ratio !best_ratio < 0
          || (F.compare ratio !best_ratio = 0 && st.basis.(i) < st.basis.(!best))
        then begin
          best := i;
          best_ratio := ratio
        end
      end
    done;
    if !best < 0 then None else Some !best

  type phase_outcome = Phase_optimal | Phase_unbounded | Phase_limit

  (* Run pivots until no entering column remains.  Switches to Bland's
     rule permanently after [stall_limit] pivots without objective
     progress (degenerate cycling guard). *)
  let run_phase st obj_row ~allowed ~budget ~iterations =
    let stall_limit = 4 * (st.m + st.ncols) in
    let stall = ref 0 in
    let bland = ref false in
    let outcome = ref None in
    while !outcome = None do
      if !iterations >= budget then outcome := Some Phase_limit
      else begin
        match entering st obj_row ~allowed ~bland:!bland with
        | None -> outcome := Some Phase_optimal
        | Some c -> begin
          match leaving st c with
          | None -> outcome := Some Phase_unbounded
          | Some r ->
            let before = obj_row.(st.ncols) in
            pivot st obj_row r c;
            incr iterations;
            (* The objective cell decreases as the objective improves
               (we subtract gain from it); equality means a degenerate
               pivot. *)
            if F.compare obj_row.(st.ncols) before < 0 then stall := 0
            else begin
              incr stall;
              if !stall > stall_limit then bland := true
            end
        end
      end
    done;
    match !outcome with Some o -> o | None -> assert false

  let build problem =
    let rows = Array.of_list problem.rows in
    let m = Array.length rows in
    let n = problem.num_vars in
    (* Normalize to non-negative right-hand sides, remembering which
       rows were negated (their duals flip sign back on extraction). *)
    let flipped = Array.make m false in
    let rows =
      Array.mapi
        (fun i r ->
          if F.compare r.rhs F.zero < 0 then begin
            flipped.(i) <- true;
            { coeffs = List.map (fun (j, v) -> (j, F.neg v)) r.coeffs;
              cmp = (match r.cmp with Le -> Ge | Ge -> Le | Eq -> Eq);
              rhs = F.neg r.rhs }
          end
          else r)
        rows
    in
    let n_slack =
      Array.fold_left
        (fun acc r -> match r.cmp with Le | Ge -> acc + 1 | Eq -> acc)
        0 rows
    in
    let n_art =
      Array.fold_left
        (fun acc r -> match r.cmp with Ge | Eq -> acc + 1 | Le -> acc)
        0 rows
    in
    let art_start = n + n_slack in
    let ncols = n + n_slack + n_art in
    let tab = Array.init m (fun _ -> Array.make (ncols + 1) F.zero) in
    let basis = Array.make m (-1) in
    (* Per original row: the column whose final reduced cost encodes the
       row's dual, and the sign relating them (slack/artificial carry
       -y_i, a surplus column carries +y_i; a flipped row negates). *)
    let dual_col = Array.make m (-1) in
    let dual_sign = Array.make m F.one in
    let next_slack = ref n and next_art = ref art_start in
    Array.iteri
      (fun i r ->
        List.iter
          (fun (j, v) ->
            if j < 0 || j >= n then
              invalid_arg
                (Printf.sprintf "Simplex.solve: variable index %d out of range" j);
            tab.(i).(j) <- F.add tab.(i).(j) v)
          r.coeffs;
        tab.(i).(ncols) <- r.rhs;
        let flip v = if flipped.(i) then F.neg v else v in
        (match r.cmp with
         | Le ->
           tab.(i).(!next_slack) <- F.one;
           basis.(i) <- !next_slack;
           dual_col.(i) <- !next_slack;
           dual_sign.(i) <- flip (F.neg F.one);
           incr next_slack
         | Ge ->
           tab.(i).(!next_slack) <- F.neg F.one;
           dual_col.(i) <- !next_slack;
           dual_sign.(i) <- flip F.one;
           incr next_slack;
           tab.(i).(!next_art) <- F.one;
           basis.(i) <- !next_art;
           incr next_art
         | Eq ->
           tab.(i).(!next_art) <- F.one;
           basis.(i) <- !next_art;
           dual_col.(i) <- !next_art;
           dual_sign.(i) <- flip (F.neg F.one);
           incr next_art))
      rows;
    ({ tab; basis; m; ncols; art_start }, n_art, dual_col, dual_sign)

  (* Phase 1: drive artificials out of the basis.  The "w row" is the
     sum of all artificial rows restricted to non-artificial columns;
     its rhs cell equals the current total artificial value. *)
  let phase1 st ~budget ~iterations =
    let w = Array.make (st.ncols + 1) F.zero in
    for i = 0 to st.m - 1 do
      if st.basis.(i) >= st.art_start then
        for j = 0 to st.ncols do
          if j < st.art_start || j = st.ncols then
            w.(j) <- F.add w.(j) st.tab.(i).(j)
        done
    done;
    let allowed j = j < st.art_start in
    match run_phase st w ~allowed ~budget ~iterations with
    | Phase_limit -> `Limit
    | Phase_unbounded ->
      (* The phase-1 objective is bounded below by zero; unboundedness
         cannot occur. *)
      assert false
    | Phase_optimal ->
      if is_pos w.(st.ncols) then `Infeasible
      else begin
        (* Pivot any remaining (zero-valued) basic artificials out; a row
           with no admissible pivot is redundant and is blanked. *)
        for i = 0 to st.m - 1 do
          if st.basis.(i) >= st.art_start then begin
            let row = st.tab.(i) in
            let col = ref (-1) in
            let j = ref 0 in
            while !col < 0 && !j < st.art_start do
              if is_nonzero row.(!j) then col := !j;
              incr j
            done;
            if !col >= 0 then begin
              pivot st w i !col;
              incr iterations
            end
            else
              for j = 0 to st.art_start - 1 do
                row.(j) <- F.zero
              done
          end
        done;
        `Feasible
      end

  let default_budget st = 2000 + (60 * (st.m + st.ncols))

  let solve ?max_iterations problem =
    let st, n_art, dual_col, dual_sign = build problem in
    let budget =
      match max_iterations with Some b -> b | None -> default_budget st
    in
    let iterations = ref 0 in
    let finish ?obj_row status =
      let values = Array.make problem.num_vars F.zero in
      if status = Optimal then
        for i = 0 to st.m - 1 do
          let b = st.basis.(i) in
          if b >= 0 && b < problem.num_vars then values.(b) <- st.tab.(i).(st.ncols)
        done;
      let objective =
        List.fold_left
          (fun acc (j, c) -> F.add acc (F.mul c values.(j)))
          F.zero problem.maximize
      in
      let duals = Array.make st.m F.zero in
      (match (status, obj_row) with
       | Optimal, Some obj ->
         for i = 0 to st.m - 1 do
           duals.(i) <- F.mul dual_sign.(i) obj.(dual_col.(i))
         done
       | _ -> ());
      { status; objective; values; duals; iterations = !iterations }
    in
    let feasible =
      if n_art = 0 then `Feasible else phase1 st ~budget ~iterations
    in
    match feasible with
    | `Infeasible -> finish Infeasible
    | `Limit -> finish Iteration_limit
    | `Feasible ->
      (* Phase 2: rebuild the reduced-cost row for the true objective and
         eliminate the current basic columns from it. *)
      let obj = Array.make (st.ncols + 1) F.zero in
      List.iter
        (fun (j, c) ->
          if j < 0 || j >= problem.num_vars then
            invalid_arg
              (Printf.sprintf "Simplex.solve: objective index %d out of range" j);
          obj.(j) <- F.add obj.(j) c)
        problem.maximize;
      for i = 0 to st.m - 1 do
        let b = st.basis.(i) in
        let f = obj.(b) in
        if is_nonzero f then begin
          let row = st.tab.(i) in
          for j = 0 to st.ncols do
            if is_nonzero row.(j) then obj.(j) <- F.sub obj.(j) (F.mul f row.(j))
          done;
          obj.(b) <- F.zero
        end
      done;
      let allowed j = j < st.art_start in
      (match run_phase st obj ~allowed ~budget ~iterations with
       | Phase_optimal -> finish ~obj_row:obj Optimal
       | Phase_unbounded -> finish Unbounded
       | Phase_limit -> finish Iteration_limit)
end
