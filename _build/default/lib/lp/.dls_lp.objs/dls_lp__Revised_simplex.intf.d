lib/lp/revised_simplex.mli:
