lib/lp/field.mli: Dls_num Format
