lib/lp/field.ml: Dls_num Float Format
