lib/lp/model.mli: Field Format Simplex
