lib/lp/model.mli: Field Format Revised_simplex Simplex
