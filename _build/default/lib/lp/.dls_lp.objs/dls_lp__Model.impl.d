lib/lp/model.ml: Array Field Format Hashtbl List Printf Revised_simplex Simplex Solver Stdlib
