lib/lp/revised_simplex.ml: Array Float Hashtbl List Logs Option Printf Queue Unix
