lib/lp/revised_simplex.ml: Array Float Hashtbl List Option Printf Queue
