(** Sparse revised simplex with product-form-of-inverse updates.

    The dense tableau of {!Simplex} costs O(m * (n + m)) memory and per
    pivot; the DLS relaxations are extremely sparse (each alpha variable
    touches at most four rows), so at the paper's largest K = 95 the
    dense tableau wastes almost all of its work.  This solver keeps the
    constraint matrix in compressed column form and represents the basis
    inverse as a product of eta matrices, refactorized periodically for
    numerical hygiene — the classical revised simplex (Dantzig pricing
    with a stall-triggered switch to Bland's rule, Harris-free ratio
    test with Bland tie-breaking).

    Scope: the packed inequality form the steady-state relaxation
    naturally has — maximize [c . x] subject to [A x <= b] with
    [x >= 0] and [b >= 0] — so the all-slack basis is feasible and no
    phase 1 is needed.  {!Model.Float.solve_auto} routes eligible
    programs here and everything else to the dense tableau; both engines
    are cross-checked on random programs in the test suite. *)

type constr = {
  coeffs : (int * float) list;  (** duplicate indices are summed *)
  rhs : float;  (** must be [>= 0] *)
}

type problem = {
  num_vars : int;
  maximize : (int * float) list;
  rows : constr list;
}

type status = Optimal | Unbounded | Iteration_limit

type solution = {
  status : status;
  objective : float;
  values : float array;
  duals : float array;
  (** one non-negative shadow price per row when optimal; strong
      duality [sum duals_i * rhs_i = objective] holds and is tested *)
  iterations : int;
}

val solve : ?max_iterations:int -> problem -> solution
(** @raise Invalid_argument on an out-of-range variable index or a
    negative right-hand side. *)
