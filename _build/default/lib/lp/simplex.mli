(** Dense two-phase primal simplex, generic over an ordered field.

    This replaces the [lp_solve] package used in the paper (no LP solver
    exists in the sealed environment).  The algorithm is the classical
    full-tableau method: rows are normalized to non-negative right-hand
    sides, slack/surplus columns are added for inequalities and
    artificial columns for [>=]/[=] rows, phase 1 drives the artificials
    to zero (or proves infeasibility), and phase 2 maximizes the user
    objective.  Entering columns follow Dantzig's rule (largest reduced
    cost) and fall back to Bland's rule permanently once the objective
    stalls, which guarantees termination even on degenerate or exact-
    arithmetic instances.

    The DLS steady-state relaxation built in {!Dls_core} only produces
    [<=] rows with non-negative right-hand sides, so it runs pure
    phase 2 from the all-slack basis; the phase-1 machinery is exercised
    by other users and by the test suite. *)

module Make (F : Field.S) : sig
  type cmp = Le | Ge | Eq

  type constr = {
    coeffs : (int * F.t) list;  (** variable index, coefficient; duplicate indices are summed *)
    cmp : cmp;
    rhs : F.t;
  }

  type problem = {
    num_vars : int;  (** structural variables [0 .. num_vars-1], all constrained [>= 0] *)
    maximize : (int * F.t) list;  (** objective terms; maximization *)
    rows : constr list;
  }

  type status =
    | Optimal
    | Infeasible
    | Unbounded
    | Iteration_limit  (** pivot budget exhausted before convergence *)

  type solution = {
    status : status;
    objective : F.t;  (** meaningful only when [status = Optimal] *)
    values : F.t array;  (** length [num_vars]; primal values when optimal *)
    duals : F.t array;
    (** one multiplier per input row (in order), meaningful when
        optimal: the shadow price of the row's right-hand side.  For a
        maximization, [<=] rows have non-negative duals, [>=] rows
        non-positive, and strong duality gives
        [sum_i duals_i * rhs_i = objective] — both checked by the test
        suite. *)
    iterations : int;  (** total pivots over both phases *)
  }

  val solve : ?max_iterations:int -> problem -> solution
  (** [solve p] maximizes [p.maximize] subject to [p.rows] and x >= 0.
      [max_iterations] defaults to a generous budget proportional to the
      problem size.
      @raise Invalid_argument if a coefficient references a variable
      index outside [0 .. num_vars-1]. *)
end
