(** Ordered-field abstraction for the simplex solver.

    The solver is written once, generically, and instantiated twice:
    {!Float} is the fast path used by the experiment sweeps (the paper
    used the floating-point [lp_solve]); {!Exact} runs over
    {!Dls_num.Rat} and is immune to round-off, serving as ground truth in
    tests and as the input to exact periodic-schedule reconstruction.

    [tolerance] is the magnitude under which a value is considered zero
    by the pivoting rules; it is [1e-9] for floats and exactly zero for
    rationals. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val tolerance : t
  (** Non-negative; values [v] with [|v| <= tolerance] are treated as
      zero by sign tests. *)

  val pp : Format.formatter -> t -> unit
end

module Float : S with type t = float

module Exact : S with type t = Dls_num.Rat.t
