(* Sign-magnitude bignums in base 2^31.

   Invariants:
   - [mag] is little-endian with no trailing (most-significant) zero limb;
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1;
   - every limb is in [0, 2^31).

   Base 2^31 is the largest power of two for which both the schoolbook
   product limb*limb + limb + carry and the Knuth-D two-limb dividend
   hi*base + lo stay below 2^62, hence inside OCaml's 63-bit [int]. *)

type t = { sign : int; mag : int array }

let base_bits = 31
let base = 1 lsl base_bits
let digit_mask = base - 1

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude primitives (arrays of limbs, always interpreted >= 0).    *)
(* ------------------------------------------------------------------ *)

let mag_is_zero m = Array.length m = 0

let mag_trim m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

let mag_compare a b =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Stdlib.compare na nb
  else begin
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (na - 1)
  end

let mag_add a b =
  let na = Array.length a and nb = Array.length b in
  let n = Stdlib.max na nb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let da = if i < na then a.(i) else 0 in
    let db = if i < nb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land digit_mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  mag_trim r

(* Precondition: a >= b. *)
let mag_sub a b =
  let na = Array.length a and nb = Array.length b in
  let r = Array.make na 0 in
  let borrow = ref 0 in
  for i = 0 to na - 1 do
    let db = if i < nb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_trim r

let mag_mul a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let r = Array.make (na + nb) 0 in
    for i = 0 to na - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to nb - 1 do
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land digit_mask;
          carry := t lsr base_bits
        done;
        let k = ref (i + nb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land digit_mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    mag_trim r
  end

(* Multiply magnitude by a small non-negative int < base. *)
let mag_mul_small a d =
  if d = 0 || mag_is_zero a then [||]
  else begin
    let na = Array.length a in
    let r = Array.make (na + 1) 0 in
    let carry = ref 0 in
    for i = 0 to na - 1 do
      let t = (a.(i) * d) + !carry in
      r.(i) <- t land digit_mask;
      carry := t lsr base_bits
    done;
    r.(na) <- !carry;
    mag_trim r
  end

let mag_add_small a d =
  if d = 0 then a
  else begin
    let na = Array.length a in
    let r = Array.make (na + 1) 0 in
    Array.blit a 0 r 0 na;
    let carry = ref d in
    let i = ref 0 in
    while !carry <> 0 do
      let t = r.(!i) + !carry in
      r.(!i) <- t land digit_mask;
      carry := t lsr base_bits;
      incr i
    done;
    mag_trim r
  end

(* Divide magnitude by a small positive int < base; returns (q, r). *)
let mag_divmod_small a d =
  assert (d > 0 && d < base);
  let na = Array.length a in
  let q = Array.make na 0 in
  let rem = ref 0 in
  for i = na - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (mag_trim q, !rem)

let mag_shift_left_bits a s =
  assert (s >= 0 && s < base_bits);
  if s = 0 || mag_is_zero a then Array.copy a
  else begin
    let na = Array.length a in
    let r = Array.make (na + 1) 0 in
    let carry = ref 0 in
    for i = 0 to na - 1 do
      let t = (a.(i) lsl s) lor !carry in
      r.(i) <- t land digit_mask;
      carry := t lsr base_bits
    done;
    r.(na) <- !carry;
    mag_trim r
  end

let mag_shift_right_bits a s =
  assert (s >= 0 && s < base_bits);
  if s = 0 then Array.copy a
  else begin
    let na = Array.length a in
    if na = 0 then [||]
    else begin
      let r = Array.make na 0 in
      for i = 0 to na - 1 do
        let hi = if i + 1 < na then a.(i + 1) else 0 in
        r.(i) <- (a.(i) lsr s) lor ((hi lsl (base_bits - s)) land digit_mask)
      done;
      mag_trim r
    end
  end

(* Knuth TAOCP vol.2 algorithm D.  Preconditions: |v| >= 2 limbs,
   u >= 0, v has no leading zero limb. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  if m < 0 then ([||], Array.copy u)
  else begin
    (* Normalize so that the top limb of v has its high bit set. *)
    let s =
      let top = v.(n - 1) in
      let rec count s = if top lsl s land (base lsr 1) <> 0 then s else count (s + 1) in
      count 0
    in
    let vn = mag_shift_left_bits v s in
    let vn = if Array.length vn < n then Array.append vn (Array.make (n - Array.length vn) 0) else vn in
    let un =
      let shifted = mag_shift_left_bits u s in
      let need = Array.length u + 1 in
      if Array.length shifted < need then
        Array.append shifted (Array.make (need - Array.length shifted) 0)
      else shifted
    in
    let q = Array.make (m + 1) 0 in
    for j = m downto 0 do
      (* The invariant u.(j+n) <= v.(n-1) keeps [num] below base^2,
         inside the 63-bit int.  The [rhat < base] guard below is load-
         bearing: it both terminates the adjustment (Knuth D3) and keeps
         [rhat * base] from overflowing. *)
      let num = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
      let qhat = ref (num / vn.(n - 1)) in
      let rhat = ref (num mod vn.(n - 1)) in
      let adjusting = ref true in
      while !adjusting do
        if
          !qhat >= base
          || (!rhat < base
              && !qhat * vn.(n - 2) > (!rhat lsl base_bits) lor un.(j + n - 2))
        then begin
          decr qhat;
          rhat := !rhat + vn.(n - 1);
          if !rhat >= base then adjusting := false
        end
        else adjusting := false
      done;
      (* Multiply-subtract qhat * vn from un[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr base_bits;
        let sub = un.(j + i) - (p land digit_mask) - !borrow in
        if sub < 0 then begin
          un.(j + i) <- sub + base;
          borrow := 1
        end
        else begin
          un.(j + i) <- sub;
          borrow := 0
        end
      done;
      let sub = un.(j + n) - !carry - !borrow in
      if sub < 0 then begin
        (* qhat was one too large: add vn back. *)
        un.(j + n) <- sub + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let t = un.(j + i) + vn.(i) + !carry2 in
          un.(j + i) <- t land digit_mask;
          carry2 := t lsr base_bits
        done;
        un.(j + n) <- (un.(j + n) + !carry2) land digit_mask
      end
      else un.(j + n) <- sub;
      q.(j) <- !qhat
    done;
    let r = mag_shift_right_bits (mag_trim (Array.sub un 0 n)) s in
    (mag_trim q, r)
  end

let mag_divmod u v =
  if mag_is_zero v then raise Division_by_zero;
  if mag_compare u v < 0 then ([||], Array.copy u)
  else if Array.length v = 1 then begin
    let q, r = mag_divmod_small u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else mag_divmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                       *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mag_trim mag in
  if mag_is_zero mag then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* Work with negative values throughout: min_int has no positive
       counterpart in a 63-bit int. *)
    let rec limbs acc n =
      if n = 0 then acc else limbs (-(n mod base) :: acc) (n / base)
    in
    let msb_first = limbs [] (if n < 0 then n else -n) in
    let mag = Array.of_list (List.rev msb_first) in
    { sign; mag = mag_trim mag }
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0

let equal a b = a.sign = b.sign && mag_compare a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else begin
    match a.sign with
    | 0 -> 0
    | 1 -> mag_compare a.mag b.mag
    | _ -> mag_compare b.mag a.mag
  end

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = mag_add a.mag b.mag }
  else begin
    match mag_compare a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> { sign = a.sign; mag = mag_sub a.mag b.mag }
    | _ -> { sign = b.sign; mag = mag_sub b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mag_mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = mag_divmod a.mag b.mag in
  let q = make (a.sign * b.sign) qm in
  let r = make a.sign rm in
  (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (mul (div a (gcd a b)) b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let shift_left t n =
  if n < 0 then invalid_arg "Bigint.shift_left: negative count";
  if t.sign = 0 then t
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let shifted = mag_shift_left_bits t.mag bits in
    let mag =
      if limbs = 0 then shifted
      else Array.append (Array.make limbs 0) shifted
    in
    { t with mag }
  end

let succ t = add t one
let pred t = sub t one

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int t =
  (* Native ints hold magnitudes up to 2^62 - 1, or exactly 2^62 for the
     negative extreme (min_int).  Magnitudes of up to 3 limbs (93 bits)
     are reconstructed negatively to cover min_int without overflow. *)
  let n = Array.length t.mag in
  if n > 3 then None
  else if n = 3 then
    (* A 3-limb magnitude is >= 2^62; only -2^62 (min_int) fits. *)
    if t.sign < 0 && t.mag.(2) = 1 && t.mag.(1) = 0 && t.mag.(0) = 0 then
      Some Stdlib.min_int
    else None
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl base_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)
  end

let fits_int t = to_int t <> None

let to_int_exn t =
  match to_int t with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: does not fit in int"

let to_float t =
  let scale = float_of_int base in
  let v = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    v := (!v *. scale) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !v

let num_bits t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * base_bits) + width 1
  end

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let chunks = ref [] in
    let m = ref t.mag in
    while not (mag_is_zero !m) do
      let q, r = mag_divmod_small !m 1_000_000_000 in
      chunks := r :: !chunks;
      m := q
    done;
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let mag = ref [||] in
  let i = ref start in
  while !i < len do
    let stop = Stdlib.min len (!i + 9) in
    let chunk_len = stop - !i in
    let chunk = String.sub s !i chunk_len in
    String.iter
      (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit")
      chunk;
    let v = int_of_string chunk in
    let pow10 =
      match chunk_len with
      | 1 -> 10 | 2 -> 100 | 3 -> 1_000 | 4 -> 10_000 | 5 -> 100_000
      | 6 -> 1_000_000 | 7 -> 10_000_000 | 8 -> 100_000_000 | _ -> 1_000_000_000
    in
    mag := mag_add_small (mag_mul_small !mag pow10) v;
    i := stop
  done;
  make sign !mag

let pp fmt t = Format.pp_print_string fmt (to_string t)

let hash t =
  Array.fold_left (fun acc limb -> (acc * 1_000_003) lxor limb) t.sign t.mag
