(** Exact rational arithmetic over {!Bigint}.

    Used by the exact simplex instance (small instances, ground truth for
    the float solver) and by the periodic-schedule reconstruction of
    Section 3.2 of the paper, which needs the exact denominators of every
    [alpha_{k,l}] to compute the schedule period [T_p = lcm(v_{k,l})].

    Values are kept canonical: the denominator is strictly positive and
    coprime with the numerator, so structural equality is numeric
    equality. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints num den].
    @raise Division_by_zero if [den] is zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Canonical numerator / denominator ([den] is always positive). *)

val of_float : float -> t
(** Exact value of a finite float (every finite float is rational).
    @raise Invalid_argument on NaN or infinities. *)

val approx_of_float : float -> max_den:int -> t
(** Best rational approximation with denominator at most [max_den],
    computed by the Stern-Brocot / continued-fraction method.  Used to
    turn float LP solutions into exact allocations suitable for schedule
    reconstruction.
    @raise Invalid_argument on NaN, infinities, or [max_den < 1]. *)

val approx_of_float_below : float -> max_den:int -> t
(** Best rational [<=] the input with denominator at most [max_den]
    (Stern-Brocot descent with exact comparisons).  Rounding work rates
    {e down} keeps an approximated allocation feasible, so schedules
    built from it never overshoot a capacity.
    @raise Invalid_argument on NaN, infinities, or [max_den < 1]. *)

val approx_of_float_above : float -> max_den:int -> t
(** Dual of {!approx_of_float_below}: best rational [>=] the input. *)

val to_float : t -> float

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
(** Largest integer [<=] the value. *)

val ceil : t -> Bigint.t
(** Smallest integer [>=] the value. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val of_string : string -> t
(** Parses ["a/b"] or a plain integer literal ["a"].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
