module B = Bigint

type t = { num : B.t; den : B.t }

(* Canonical form: den > 0, gcd(num, den) = 1, zero is 0/1. *)

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.equal g B.one then { num; den }
    else { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let minus_one = { num = B.minus_one; den = B.one }

let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints a b = make (B.of_int a) (B.of_int b)

let num t = t.num
let den t = t.den

let sign t = B.sign t.num
let is_zero t = B.is_zero t.num
let is_integer t = B.equal t.den B.one

let equal a b = B.equal a.num b.num && B.equal a.den b.den

let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let neg t = { t with num = B.neg t.num }
let abs t = { t with num = B.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero;
  if B.sign t.num > 0 then { num = t.den; den = t.num }
  else { num = B.neg t.den; den = B.neg t.num }

let add a b =
  make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b =
  make (B.sub (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)

let div a b =
  if is_zero b then raise Division_by_zero;
  make (B.mul a.num b.den) (B.mul a.den b.num)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t = fst (B.ediv t.num t.den)

let ceil t = B.neg (fst (B.ediv (B.neg t.num) t.den))

let mul_int t n = make (B.mul t.num (B.of_int n)) t.den
let div_int t n = make t.num (B.mul t.den (B.of_int n))

let to_float t = B.to_float t.num /. B.to_float t.den

let of_float f =
  if Float.is_nan f || not (Float.is_finite f) then
    invalid_arg "Rat.of_float: not finite"
  else if f = 0.0 then zero
  else begin
    (* f = m * 2^e with m a 53-bit integer: decompose exactly. *)
    let mantissa, exp = Float.frexp f in
    let m53 = Int64.of_float (Float.ldexp mantissa 53) in
    let e = exp - 53 in
    let m = B.of_string (Int64.to_string m53) in
    if e >= 0 then of_bigint (B.shift_left m e)
    else make m (B.shift_left B.one (-e))
  end

let approx_of_float f ~max_den =
  if Float.is_nan f || not (Float.is_finite f) then
    invalid_arg "Rat.approx_of_float: not finite";
  if max_den < 1 then invalid_arg "Rat.approx_of_float: max_den < 1";
  let negative = f < 0.0 in
  let f = Float.abs f in
  (* Continued-fraction convergents p/q of f, stopping before q exceeds
     max_den; the last admissible convergent is the best approximation
     among all fractions with denominator <= its own. *)
  let rec loop x p0 q0 p1 q1 =
    let a = Float.to_int (Float.floor x) in
    let p2 = (a * p1) + p0 and q2 = (a * q1) + q0 in
    if q2 > max_den || q2 < 0 then (p1, q1)
    else begin
      let frac = x -. Float.floor x in
      if frac < 1e-12 then (p2, q2)
      else loop (1.0 /. frac) p1 q1 p2 q2
    end
  in
  let p, q = loop f 0 1 1 0 in
  let p, q = if q = 0 then (Float.to_int (Float.round f), 1) else (p, q) in
  let r = of_ints p q in
  if negative then neg r else r

(* Stern-Brocot search for the best rational <= (resp. >=) a target,
   with denominators bounded by [max_den].  The target is first lifted
   to an exact rational (every finite float is one), so all comparisons
   are exact; mediant steps toward one side are batched, giving the
   O(log max_den) behaviour of the continued-fraction expansion. *)
let stern_brocot_bounds y max_den =
  (* y is an exact non-negative rational < 1; returns (lo, hi), the best
     fractions below/above y with denominator <= max_den.  If y itself
     is representable, lo = hi = y. *)
  let lo_p = ref 0 and lo_q = ref 1 in
  let hi_p = ref 1 and hi_q = ref 1 in
  let cmp_frac p q =
    (* compare p/q with y, exactly *)
    B.compare (B.mul (B.of_int p) (den y)) (B.mul (num y) (B.of_int q))
  in
  (* Largest s >= 1 satisfying a prefix-closed predicate with good 1
     known to hold: exponential growth, then binary search. *)
  let max_steps good =
    if not (good 2) then 1
    else begin
      let upper = ref 4 in
      while good !upper do
        upper := 2 * !upper
      done;
      let lo = ref (!upper / 2) and hi = ref !upper in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if good mid then lo := mid else hi := mid
      done;
      !lo
    end
  in
  let exact = ref false in
  let continue = ref true in
  while !continue && not !exact do
    let mp = !lo_p + !hi_p and mq = !lo_q + !hi_q in
    if mq > max_den then continue := false
    else begin
      let c = cmp_frac mp mq in
      if c = 0 then begin
        lo_p := mp; lo_q := mq; hi_p := mp; hi_q := mq;
        exact := true
      end
      else if c < 0 then begin
        (* Mediant below y: take s mediant steps toward hi at once. *)
        let good s =
          !lo_q + (s * !hi_q) <= max_den
          && cmp_frac (!lo_p + (s * !hi_p)) (!lo_q + (s * !hi_q)) < 0
        in
        let s = max_steps good in
        lo_p := !lo_p + (s * !hi_p);
        lo_q := !lo_q + (s * !hi_q)
      end
      else begin
        let good s =
          (s * !lo_q) + !hi_q <= max_den
          && cmp_frac ((s * !lo_p) + !hi_p) ((s * !lo_q) + !hi_q) > 0
        in
        let s = max_steps good in
        hi_p := (s * !lo_p) + !hi_p;
        hi_q := (s * !lo_q) + !hi_q
      end
    end
  done;
  ((!lo_p, !lo_q), (!hi_p, !hi_q))

let approx_directed ~below f ~max_den =
  if Float.is_nan f || not (Float.is_finite f) then
    invalid_arg "Rat.approx_of_float_below: not finite";
  if max_den < 1 then invalid_arg "Rat.approx_of_float_below: max_den < 1";
  if max_den > 1 lsl 30 then
    invalid_arg "Rat.approx_of_float_below: max_den too large (max 2^30)";
  let x = of_float f in
  let ip = floor x in
  (* fractional part in [0, 1); the Stern-Brocot interval (0/1, 1/1)
     covers both directions, including rounding up to the next integer. *)
  let frac = sub x (of_bigint ip) in
  if is_zero frac then of_bigint ip
  else begin
    let (lo_p, lo_q), (hi_p, hi_q) = stern_brocot_bounds frac max_den in
    let p, q = if below then (lo_p, lo_q) else (hi_p, hi_q) in
    add (of_bigint ip) (of_ints p q)
  end

let approx_of_float_below f ~max_den = approx_directed ~below:true f ~max_den

let approx_of_float_above f ~max_den = approx_directed ~below:false f ~max_den

let to_string t =
  if is_integer t then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (B.of_string s)
  | Some i ->
    let a = String.sub s 0 i in
    let b = String.sub s (i + 1) (String.length s - i - 1) in
    make (B.of_string a) (B.of_string b)

let pp fmt t = Format.pp_print_string fmt (to_string t)
