(** Arbitrary-precision signed integers.

    The sealed build environment offers no [zarith], yet two parts of the
    reproduction genuinely need unbounded integers: the exact-rational
    simplex (pivot values grow multiplicatively) and the periodic-schedule
    reconstruction of Section 3.2 of the paper, whose period is the lcm of
    the denominators of all [alpha_{k,l}] and routinely exceeds 2^63.

    Representation: sign and little-endian magnitude in base 2^31, chosen
    so that every intermediate product or two-digit dividend of the
    schoolbook and Knuth-D algorithms fits in OCaml's 63-bit native [int].
    Values are immutable and canonical (no leading zero limbs; zero has an
    empty magnitude), so structural equality coincides with numeric
    equality. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int option
(** [to_int v] is [Some n] iff [v] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_float : t -> float
(** Nearest-float conversion; may return infinities for huge values. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val sign : t -> int
(** -1, 0 or 1. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated division
    (quotient rounded toward zero, [r] has the sign of [a]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv : t -> t -> t * t
(** Euclidean division: [(q, r)] with [a = q*b + r] and [0 <= r < |b|].
    @raise Division_by_zero if [b] is zero. *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd zero zero = zero]. *)

val lcm : t -> t -> t
(** Non-negative least common multiple; [lcm] with zero is zero. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0].
    @raise Invalid_argument on a negative exponent. *)

val shift_left : t -> int -> t
(** Multiplication by 2^n, [n >= 0]. *)

val succ : t -> t
val pred : t -> t

val min : t -> t -> t
val max : t -> t -> t

val hash : t -> int

val num_bits : t -> int
(** Number of bits of the magnitude (0 for zero); a cheap size proxy used
    by tests and by the rational layer to bound growth. *)

val fits_int : t -> bool
