(** Resumable, sharded evaluation campaigns.

    The paper's Section 6 conclusions rest on ~270,000 random platforms.
    Running at that scale is an experiment {e service}, not a loop: this
    module gives every platform index its own pseudo-random stream
    (derived in O(1) with {!Dls_util.Prng.derive}, so the draws do not
    depend on evaluation order, domain count, or shard partitioning),
    streams each finished evaluation to an append-only JSONL log, keeps
    a periodic checkpoint manifest next to it, and — after a crash or a
    kill — replays the log to skip finished indices and continue from
    the frontier.  A campaign interrupted at platform 200,000 therefore
    costs nothing but the platforms not yet logged.

    Determinism contract: for a fixed {!config} (with
    [measure_time = false] so wall-clock noise is zeroed), the multiset
    of logged lines is byte-identical whatever the [domains], [chunk],
    [shards] or crash/resume history — only the order in the file
    varies, and sorting by index restores the canonical stream.  The
    test suite enforces this. *)

type config = {
  seed : int;
  ks : int list;  (** cluster counts; index [i] evaluates [ks.(i / per_k)] *)
  per_k : int;  (** platforms per value of K *)
  with_lprr : bool;  (** also run LPRR (costs K² LP solves per platform) *)
  lprr_max_k : int option;
      (** when set, LPRR only for [k <= lprr_max_k] (Figure 7's regime) *)
  measure_time : bool;
      (** [false] records every wall-clock field as 0, making the log
          byte-reproducible; [true] (production) keeps real timings *)
}

val default_config : config
(** Table 1 sampling defaults: seed 12, K in 5..55, 5 platforms per K,
    no LPRR, timings on. *)

val total : config -> int
(** [per_k * List.length ks]. *)

val k_of_index : config -> int -> int
(** The K of campaign index [i]: indices are blocked by K, [per_k] at a
    time, in [ks] order. *)

type record = {
  index : int;  (** 0-based position in the campaign *)
  params : Dls_platform.Generator.params;  (** the sampled grid point *)
  active_apps : int;
  values : Measure.values;
}

type entry =
  | Record of record
  | Skipped of { index : int; reason : string }
      (** an evaluation that returned [Error] (infeasible heuristic
          output); logged so a resume does not retry it *)

val entry_index : entry -> int

val evaluate_index : config -> int -> entry
(** Evaluate one campaign index from scratch: derive its private PRNG
    stream, sample the platform and workload, run every heuristic.
    Pure function of [(config, index)] up to wall-clock fields. *)

(** {2 JSONL record codec}

    One entry per line.  [entry_of_line] never raises: torn or
    partially-flushed lines decode to [Error], which is what lets
    {!load_log} treat a ragged final line as an interrupted write
    rather than corruption. *)

val entry_to_line : entry -> string
(** Single line, no trailing newline. *)

val entry_of_line : string -> (entry, string) result

(** {2 Checkpoint manifest} *)

type manifest = {
  m_config : config;
  m_total : int;
  m_completed : int;  (** entries durably in the log when written *)
}

val manifest_to_string : manifest -> string

val manifest_of_string : string -> (manifest, string) result

val manifest_path : string -> string
(** [manifest_path out] is [out ^ ".manifest"]; written atomically
    (temp file + rename) so a crash never leaves a torn manifest. *)

val load_log :
  path:string -> (entry list * int, string) result
(** Replay an existing JSONL log: entries in file order, plus the byte
    length of the valid prefix.  A final line that is unparseable or
    lacks its trailing newline is dropped (interrupted write); an
    invalid line {e before} the end is an error — the log is corrupt and
    resuming would silently lose data. *)

(** {2 Running} *)

type summary = Engine.summary = {
  s_total : int;
  s_completed : int;  (** successful records, replayed + new *)
  s_skipped : int;  (** skipped entries, replayed + new *)
  s_evaluated : int;  (** entries computed by this run *)
  s_replayed : int;  (** entries recovered from the log on resume *)
  s_wall : float;  (** seconds spent in this run *)
  s_times : (string * float array) list;
      (** per-heuristic wall-clock samples from this run's records, for
          {!Dls_util.Stats} summaries *)
}

val run :
  ?domains:int ->
  ?chunk:int ->
  ?checkpoint_every:int ->
  ?shards:int ->
  ?shard:int ->
  ?resume:bool ->
  ?out:string ->
  ?on_entry:(entry -> unit) ->
  config ->
  (summary, string) result
(** [run config] evaluates every pending index and returns the campaign
    summary.

    - [out]: append each entry as one JSONL line (flushed per chunk) and
      maintain [manifest_path out].  Without it the campaign is
      in-memory only ([resume] is then meaningless).
    - [resume]: replay an existing [out] log first (see {!load_log}),
      verify it against the manifest's config fingerprint, truncate any
      torn tail, fire [on_entry] for every replayed entry, and evaluate
      only the remainder.  Without [resume], an existing [out] is
      started over from scratch.
    - [shards]: partition indices round-robin ([index mod shards]);
      [shard] restricts the run to one partition (for spreading a
      campaign over processes or machines appending to per-shard logs),
      otherwise all partitions run sequentially in this process.
    - [checkpoint_every]: rewrite the manifest after this many newly
      logged entries (default 256).
    - [domains]/[chunk]: forwarded to
      {!Dls_util.Parallel.map_chunked}; memory stays O(chunk).
    - [on_entry]: called for every entry as it becomes durable, in log
      order (replayed first, then new entries in evaluation order —
      index order within a shard).

    Progress (records/s, ETA) is reported through [Logs] at info level
    roughly every two seconds.  Errors (config/manifest mismatch,
    corrupt log, invalid sharding) return [Error]; exceptions raised by
    the evaluation itself propagate after the worker pool has joined,
    and the log remains valid for a later [resume]. *)

val summary_table : summary -> Report.table
(** Campaign totals (records, skips, replay, throughput) as a report
    table for the CLI. *)

val times_table : summary -> Report.table
(** Per-heuristic wall-clock digest (mean/median/p95/max via
    {!Dls_util.Stats}) of this run's records; heuristics with no samples
    are omitted. *)

val collect : ?domains:int -> config -> record list
(** In-memory convenience for the figure generators: run the whole
    campaign (no log file), warn on skips, return records in index
    order.  @raise Invalid_argument on an invalid config. *)
