module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
module J = Dls_util.Json
module Faults = Dls_flowsim.Faults
module Simulator = Dls_flowsim.Simulator
open Dls_core

type config = {
  seed : int;
  k : int;
  rates : float list;
  per_rate : int;
  periods : int;
  policy : Faults.policy;
  measure_time : bool;
}

let default_config =
  { seed = 21;
    k = 12;
    rates = [ 0.02; 0.05; 0.1 ];
    per_rate = 4;
    periods = 20;
    policy = Faults.Stall;
    measure_time = true }

let total config = config.per_rate * List.length config.rates

let rate_of_index config index = List.nth config.rates (index / config.per_rate)

type hres = {
  predicted : float;
  baseline : float;
  faulted : float;
  repaired : float;
  stage : Repair.stage;
  repair_seconds : float;
  killed : int;
  stalled : int;
}

type record = {
  index : int;
  rate : float;
  fault_events : int;
  downtime : float;
  results : (Heuristics.t * hres option) list;
}

type entry = Record of record | Skipped of { index : int; reason : string }

let entry_index = function
  | Record r -> r.index
  | Skipped { index; _ } -> index

(* ------------------------------------------------------------------ *)
(* Evaluation of one index                                             *)
(* ------------------------------------------------------------------ *)

let total_achieved (s : Simulator.stats) =
  Array.fold_left ( +. ) 0.0 s.Simulator.achieved

let total_predicted problem alloc =
  let kk = Problem.num_clusters problem in
  let acc = ref 0.0 in
  for k = 0 to kk - 1 do
    acc := !acc +. Allocation.app_throughput alloc k
  done;
  !acc

(* The fault plan's seed is its own derived function of (seed, index) so
   the plan never depends on how many draws the platform or the
   heuristics consumed. *)
let fault_seed config index = config.seed + ((index + 1) * 1_000_003)

let evaluate_index config index =
  let rate = rate_of_index config index in
  let rng = Prng.derive ~seed:config.seed ~index in
  let params = Measure.sample_params rng ~k:config.k in
  let platform = Gen.generate rng params in
  let problem = Measure.assign_workload rng platform in
  let horizon = float_of_int config.periods in
  let plan =
    Faults.random ~seed:(fault_seed config index) ~horizon ~link_rate:rate
      ~cluster_rate:(rate *. 0.5) platform
  in
  match
    let degraded = Faults.degraded_at platform plan ~time:horizon in
    let payoffs =
      Array.init (Problem.num_clusters problem) (Problem.payoff problem)
    in
    Problem.make degraded ~payoffs
  with
  | exception Invalid_argument msg -> Skipped { index; reason = msg }
  | dproblem ->
    let eval_heuristic h =
      match Heuristics.run ~rng:(Prng.split rng) h problem with
      | Error _ -> None
      | Ok alloc -> (
        let base = Simulator.run ~periods:config.periods problem alloc in
        let fstats =
          Simulator.run ~periods:config.periods ~faults:plan
            ~fault_policy:config.policy problem alloc
        in
        match Repair.repair ~rng:(Prng.split rng) dproblem alloc with
        | Error _ -> None
        | Ok outcome ->
          let seconds =
            if not config.measure_time then 0.0
            else
              List.fold_left
                (fun acc (a : Repair.attempt) -> acc +. a.Repair.seconds)
                0.0 outcome.Repair.attempts
          in
          Some
            { predicted = total_predicted problem alloc;
              baseline = total_achieved base;
              faulted = total_achieved fstats;
              repaired = total_predicted dproblem outcome.Repair.allocation;
              stage = outcome.Repair.stage;
              repair_seconds = seconds;
              killed = fstats.Simulator.killed_transfers;
              stalled = fstats.Simulator.stalled_transfers })
    in
    let results = List.map (fun h -> (h, eval_heuristic h)) Heuristics.all in
    if List.for_all (fun (_, r) -> r = None) results then
      Skipped { index; reason = "no heuristic produced a repairable allocation" }
    else
      Record
        { index; rate;
          fault_events =
            List.length
              (List.filter
                 (fun e -> e.Faults.time < horizon)
                 (Faults.events plan));
          downtime = Faults.downtime platform plan ~horizon;
          results }

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let stage_of_name = function
  | "rescale" -> Ok Repair.Rescale
  | "refine" -> Ok Repair.Refine
  | "resolve" -> Ok Repair.Resolve
  | s -> Error (Printf.sprintf "unknown repair stage %S" s)

let hres_to_json = function
  | None -> J.Null
  | Some h ->
    J.Obj
      [ ("predicted", J.Num h.predicted);
        ("baseline", J.Num h.baseline);
        ("faulted", J.Num h.faulted);
        ("repaired", J.Num h.repaired);
        ("stage", J.Str (Repair.stage_name h.stage));
        ("repair_seconds", J.Num h.repair_seconds);
        ("killed", J.Num (float_of_int h.killed));
        ("stalled", J.Num (float_of_int h.stalled)) ]

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error ("missing field \"" ^ name ^ "\"")

let num_field name json =
  let* v = field name json in
  J.to_num v

let int_field name json =
  let* v = field name json in
  J.to_int v

let str_field name json =
  let* v = field name json in
  J.to_str v

let hres_of_json = function
  | J.Null -> Ok None
  | json ->
    let* predicted = num_field "predicted" json in
    let* baseline = num_field "baseline" json in
    let* faulted = num_field "faulted" json in
    let* repaired = num_field "repaired" json in
    let* stage_str = str_field "stage" json in
    let* stage = stage_of_name stage_str in
    let* repair_seconds = num_field "repair_seconds" json in
    let* killed = int_field "killed" json in
    let* stalled = int_field "stalled" json in
    Ok
      (Some
         { predicted; baseline; faulted; repaired; stage; repair_seconds;
           killed; stalled })

let entry_to_line = function
  | Record r ->
    J.to_string
      (J.Obj
         [ ("type", J.Str "record");
           ("index", J.Num (float_of_int r.index));
           ("rate", J.Num r.rate);
           ("fault_events", J.Num (float_of_int r.fault_events));
           ("downtime", J.Num r.downtime);
           ("results",
            J.Obj
              (List.map
                 (fun (h, res) -> (Heuristics.name h, hres_to_json res))
                 r.results)) ])
  | Skipped { index; reason } ->
    J.to_string
      (J.Obj
         [ ("type", J.Str "skipped");
           ("index", J.Num (float_of_int index));
           ("reason", J.Str reason) ])

let entry_of_line line =
  let* json = J.of_string line in
  let* kind = str_field "type" json in
  let* index = int_field "index" json in
  match kind with
  | "record" ->
    let* rate = num_field "rate" json in
    let* fault_events = int_field "fault_events" json in
    let* downtime = num_field "downtime" json in
    let* results_json = field "results" json in
    let* results =
      List.fold_left
        (fun acc h ->
          let* acc = acc in
          let* res_json = field (Heuristics.name h) results_json in
          let* res = hres_of_json res_json in
          Ok ((h, res) :: acc))
        (Ok []) Heuristics.all
    in
    Ok (Record { index; rate; fault_events; downtime; results = List.rev results })
  | "skipped" ->
    let* reason = str_field "reason" json in
    Ok (Skipped { index; reason })
  | other -> Error ("unknown entry type \"" ^ other ^ "\"")

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let policy_name = function Faults.Stall -> "stall" | Faults.Kill -> "kill"

let policy_of_name = function
  | "stall" -> Ok Faults.Stall
  | "kill" -> Ok Faults.Kill
  | s -> Error (Printf.sprintf "unknown fault policy %S" s)

let manifest_to_string config ~completed =
  J.to_string
    (J.Obj
       [ ("version", J.Num 1.0);
         ("experiment", J.Str "resilience");
         ("seed", J.Num (float_of_int config.seed));
         ("k", J.Num (float_of_int config.k));
         ("rates", J.Arr (List.map (fun r -> J.Num r) config.rates));
         ("per_rate", J.Num (float_of_int config.per_rate));
         ("periods", J.Num (float_of_int config.periods));
         ("policy", J.Str (policy_name config.policy));
         ("measure_time", J.Bool config.measure_time);
         ("total", J.Num (float_of_int (total config)));
         ("completed", J.Num (float_of_int completed)) ])

let config_of_manifest s =
  let* json = J.of_string s in
  let* version = int_field "version" json in
  if version <> 1 then
    Error (Printf.sprintf "unsupported manifest version %d" version)
  else
    let* experiment = str_field "experiment" json in
    if experiment <> "resilience" then
      Error (Printf.sprintf "manifest belongs to experiment %S" experiment)
    else
      let* seed = int_field "seed" json in
      let* k = int_field "k" json in
      let* rates_json = field "rates" json in
      let* rates_items = J.to_list rates_json in
      let* rates =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* r = J.to_num item in
            Ok (r :: acc))
          (Ok []) rates_items
      in
      let rates = List.rev rates in
      let* per_rate = int_field "per_rate" json in
      let* periods = int_field "periods" json in
      let* policy_str = str_field "policy" json in
      let* policy = policy_of_name policy_str in
      let* measure_time_json = field "measure_time" json in
      let* measure_time = J.to_bool measure_time_json in
      Ok { seed; k; rates; per_rate; periods; policy; measure_time }

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let validate config =
  if config.rates = [] then Error "resilience: rates must be non-empty"
  else if List.exists (fun r -> r < 0.0) config.rates then
    Error "resilience: rates must be >= 0"
  else if config.per_rate < 0 then Error "resilience: per_rate must be >= 0"
  else if config.periods < 3 then Error "resilience: periods must be >= 3"
  else Ok ()

let spec config =
  { Engine.log_label = "resilience";
    total = total config;
    index_of = entry_index;
    to_line = entry_to_line;
    of_line = entry_of_line;
    evaluate = evaluate_index config;
    skip_reason =
      (function Record _ -> None | Skipped { reason; _ } -> Some reason);
    entry_times =
      (function
      | Skipped _ -> []
      | Record r ->
        List.filter_map
          (fun (_, res) ->
            Option.map (fun h -> ("repair", h.repair_seconds)) res)
          r.results);
    time_labels = [ "repair" ];
    log_time_stats = config.measure_time;
    write_manifest =
      (fun ~out ~completed ->
        Engine.write_atomic ~path:(out ^ ".manifest")
          (manifest_to_string config ~completed ^ "\n"));
    check_manifest =
      (fun ~path ->
        let mpath = path ^ ".manifest" in
        if not (Sys.file_exists mpath) then Ok ()
        else
          let* c =
            config_of_manifest
              (In_channel.with_open_bin mpath In_channel.input_all)
          in
          if c <> config then
            Error
              (mpath
               ^ ": checkpoint belongs to a different resilience config; \
                  refusing to resume")
          else Ok ()) }

let run ?domains ?chunk ?checkpoint_every ?shards ?shard ?resume ?out ?on_entry
    config =
  let* () = validate config in
  Engine.run ?domains ?chunk ?checkpoint_every ?shards ?shard ?resume ?out
    ?on_entry (spec config)

let collect ?domains config =
  let records = ref [] in
  match
    run ?domains
      ~on_entry:(function Record r -> records := r :: !records | Skipped _ -> ())
      config
  with
  | Ok _ -> List.sort (fun a b -> Stdlib.compare a.index b.index) !records
  | Error msg -> invalid_arg ("Resilience.collect: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let ratio num den = if den > 0.0 then num /. den else 1.0

let table config records =
  let rows =
    List.concat_map
      (fun rate ->
        let at_rate = List.filter (fun r -> r.rate = rate) records in
        List.filter_map
          (fun h ->
            let hs =
              List.filter_map
                (fun r -> List.assoc_opt h r.results |> Option.join)
                at_rate
            in
            match hs with
            | [] -> None
            | hs ->
              let n = float_of_int (List.length hs) in
              let mean f = List.fold_left (fun a x -> a +. f x) 0.0 hs /. n in
              let retained = mean (fun x -> ratio x.faulted x.baseline) in
              let repaired = mean (fun x -> ratio x.repaired x.predicted) in
              let stage_counts =
                List.map
                  (fun s ->
                    ( s,
                      List.length (List.filter (fun x -> x.stage = s) hs) ))
                  [ Repair.Rescale; Repair.Refine; Repair.Resolve ]
              in
              let modal_stage, _ =
                List.fold_left
                  (fun (bs, bc) (s, c) -> if c > bc then (s, c) else (bs, bc))
                  (Repair.Rescale, -1) stage_counts
              in
              Some
                [ Report.cell_float rate;
                  Heuristics.name h;
                  string_of_int (List.length hs);
                  Report.cell_float retained;
                  Report.cell_float repaired;
                  Repair.stage_name modal_stage;
                  Report.cell_float (mean (fun x -> x.repair_seconds)) ])
          Heuristics.all)
      config.rates
  in
  { Report.title =
      Printf.sprintf
        "Resilience: throughput retained under faults (K=%d, %d platforms per \
         rate, policy %s)"
        config.k config.per_rate (policy_name config.policy);
    header =
      [ "rate"; "heuristic"; "n"; "retained"; "repaired"; "stage"; "repair_s" ];
    rows }
