lib/experiments/sweep.ml: Campaign Dls_platform Logs Measure Printf String
