lib/experiments/sweep.ml: Array Dls_core Dls_platform Dls_util List Logs Measure Printf Problem String
