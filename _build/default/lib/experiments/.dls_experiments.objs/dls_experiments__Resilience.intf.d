lib/experiments/resilience.mli: Dls_core Dls_flowsim Engine Report
