lib/experiments/sweep.mli: Campaign Dls_platform Measure
