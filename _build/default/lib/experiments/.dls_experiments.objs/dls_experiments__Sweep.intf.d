lib/experiments/sweep.mli: Dls_platform Measure
