lib/experiments/ablation.ml: Allocation Array Dls_core Dls_platform Dls_util Greedy Heuristics List Logs Lp_relax Lprg Lprr Measure Report Unbounded_baseline
