lib/experiments/adaptivity.ml: Allocation Array Dls_core Dls_platform Dls_util Float Greedy List Lp_relax Lprg Lprr Measure Problem Report
