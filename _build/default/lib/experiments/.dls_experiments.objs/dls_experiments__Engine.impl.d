lib/experiments/engine.ml: Array Dls_util Fun In_channel List Logs Option Printf Result Stdlib String Sys Unix
