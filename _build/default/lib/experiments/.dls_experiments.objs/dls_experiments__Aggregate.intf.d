lib/experiments/aggregate.mli: Report
