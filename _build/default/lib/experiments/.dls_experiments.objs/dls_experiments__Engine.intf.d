lib/experiments/engine.mli:
