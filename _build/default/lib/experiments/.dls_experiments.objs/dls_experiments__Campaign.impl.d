lib/experiments/campaign.ml: Array Dls_core Dls_lp Dls_platform Dls_util Engine In_channel List Measure Option Printf Problem Report Result Stdlib Sys
