lib/experiments/campaign.ml: Array Dls_core Dls_lp Dls_platform Dls_util Fun In_channel List Logs Measure Option Printf Problem Report Result Stdlib String Sys Unix
