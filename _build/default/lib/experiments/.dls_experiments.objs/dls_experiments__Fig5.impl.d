lib/experiments/fig5.ml: Array Dls_util List Logs Measure Report
