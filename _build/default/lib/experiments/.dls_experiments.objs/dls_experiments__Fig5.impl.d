lib/experiments/fig5.ml: Array Campaign Dls_platform Dls_util List Measure Report
