lib/experiments/resilience.ml: Allocation Array Dls_core Dls_flowsim Dls_platform Dls_util Engine Heuristics In_channel List Measure Option Printf Problem Repair Report Result Stdlib Sys
