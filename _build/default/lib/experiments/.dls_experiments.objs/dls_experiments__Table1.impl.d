lib/experiments/table1.ml: Array Dls_core Dls_graph Dls_platform Dls_util List Measure Report
