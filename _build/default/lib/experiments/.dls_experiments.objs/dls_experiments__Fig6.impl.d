lib/experiments/fig6.ml: Array Dls_lp Dls_util List Logs Measure Report
