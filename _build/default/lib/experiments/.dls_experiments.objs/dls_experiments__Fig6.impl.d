lib/experiments/fig6.ml: Array Dls_util List Logs Measure Report
