lib/experiments/campaign.mli: Dls_platform Measure Report
