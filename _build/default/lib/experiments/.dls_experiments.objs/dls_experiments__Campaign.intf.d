lib/experiments/campaign.mli: Dls_platform Engine Measure Report
