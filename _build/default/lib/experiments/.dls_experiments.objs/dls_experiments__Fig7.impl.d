lib/experiments/fig7.ml: Array Dls_lp Dls_util List Logs Measure Report
