lib/experiments/fig7.ml: Array Campaign Dls_lp Dls_platform Dls_util List Measure Report
