lib/experiments/fig7.ml: Array Dls_util List Logs Measure Report
