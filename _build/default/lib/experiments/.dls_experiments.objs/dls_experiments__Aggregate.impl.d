lib/experiments/aggregate.ml: Array Dls_util List Logs Measure Report
