lib/experiments/aggregate.ml: Array Campaign Dls_util List Measure Report
