lib/experiments/adaptivity.mli: Dls_core Report
