lib/experiments/measure.ml: Allocation Array Dls_core Dls_lp Dls_platform Dls_util Greedy Heuristics List Lp_relax Lpr Lprg Lprr Problem Result Unix
