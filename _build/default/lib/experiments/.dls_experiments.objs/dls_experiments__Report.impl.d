lib/experiments/report.ml: Array Float Format Fun List Printf Stdlib String
