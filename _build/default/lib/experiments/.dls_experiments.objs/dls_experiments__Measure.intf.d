lib/experiments/measure.mli: Dls_core Dls_lp Dls_platform Dls_util
