lib/experiments/measure.mli: Dls_core Dls_platform Dls_util
