module Gen = Dls_platform.Generator
module Stats = Dls_util.Stats

type row = {
  k : int;
  platforms : int;
  maxmin_g : float;
  sum_g : float;
  maxmin_lprr : float;
  sum_lprr : float;
  maxmin_lprg : float;
  sum_lprg : float;
  lprr_pivots : float;
  lprr_reinversions : float;
  lprr_warm_starts : float;
}

let eps = 1e-9

let run ?(seed = 2) ?(ks = [ 15; 20; 25 ]) ?(per_k = 4) () =
  (* One LPRR-enabled campaign; each index carries its own coin stream. *)
  let records =
    Campaign.collect
      { Campaign.default_config with
        Campaign.seed; ks; per_k; with_lprr = true }
  in
  List.map
    (fun k ->
      let acc = Array.make 9 [] in
      let push i v = acc.(i) <- v :: acc.(i) in
      let used = ref 0 in
      List.iter
        (fun (r : Campaign.record) ->
          let v = r.Campaign.values in
          if r.Campaign.params.Gen.k <> k then ()
          else
          (match (v.Measure.lprr_maxmin, v.Measure.lprr_sum) with
           | Some lprr_maxmin, Some lprr_sum
             when v.Measure.lp_maxmin > eps && v.Measure.lp_sum > eps ->
             incr used;
             push 0 (v.Measure.g_maxmin /. v.Measure.lp_maxmin);
             push 1 (v.Measure.g_sum /. v.Measure.lp_sum);
             push 2 (lprr_maxmin /. v.Measure.lp_maxmin);
             push 3 (lprr_sum /. v.Measure.lp_sum);
             push 4 (v.Measure.lprg_maxmin /. v.Measure.lp_maxmin);
             push 5 (v.Measure.lprg_sum /. v.Measure.lp_sum);
             (match v.Measure.lprr_counters with
              | Some c ->
                push 6 (float_of_int c.Dls_lp.Revised_simplex.pivots);
                push 7 (float_of_int c.Dls_lp.Revised_simplex.reinversions);
                push 8 (float_of_int c.Dls_lp.Revised_simplex.warm_starts)
              | None -> ())
           | _ -> ()))
        records;
      let mean i = Stats.mean (Array.of_list acc.(i)) in
      { k; platforms = !used;
        maxmin_g = mean 0; sum_g = mean 1;
        maxmin_lprr = mean 2; sum_lprr = mean 3;
        maxmin_lprg = mean 4; sum_lprg = mean 5;
        lprr_pivots = mean 6; lprr_reinversions = mean 7;
        lprr_warm_starts = mean 8 })
    ks

let table rows =
  { Report.title = "Figure 6: LPRR vs G (LPRG for context), relative to LP";
    header =
      [ "K"; "platforms"; "MAXMIN(G)/LP"; "SUM(G)/LP"; "MAXMIN(LPRR)/LP";
        "SUM(LPRR)/LP"; "MAXMIN(LPRG)/LP"; "SUM(LPRG)/LP";
        "LPRR pivots"; "LPRR reinv"; "LPRR warm" ];
    rows =
      List.map
        (fun r ->
          [ string_of_int r.k; string_of_int r.platforms;
            Report.cell_float r.maxmin_g; Report.cell_float r.sum_g;
            Report.cell_float r.maxmin_lprr; Report.cell_float r.sum_lprr;
            Report.cell_float r.maxmin_lprg; Report.cell_float r.sum_lprg;
            Report.cell_float r.lprr_pivots;
            Report.cell_float r.lprr_reinversions;
            Report.cell_float r.lprr_warm_starts ])
        rows }
