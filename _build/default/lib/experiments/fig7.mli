(** Figure 7: running time of G, LPR, LPRG and LPRR versus K.

    The paper plots wall-clock seconds on a log scale for
    K = 10, 20, 30, 40: G is orders of magnitude faster than the
    LP-based heuristics, LPR/LPRG track the single LP solve, and LPRR
    costs about K^2 LP solves.  Absolute values differ from the paper's
    Pentium III / lp_solve setup; the growth shape is the result. *)

type row = {
  k : int;
  platforms : int;
  time_g : float;  (** mean seconds *)
  time_lp : float;
  time_lpr : float;
  time_lprg : float;
  time_lprr : float option;  (** [None] beyond [lprr_max_k] *)
  lprr_pivots : float option;
  (** Mean total simplex pivots of the MAXMIN LPRR run. *)
  lprr_reinversions : float option;  (** mean basis reinversions per run *)
}

val run :
  ?seed:int -> ?ks:int list -> ?per_k:int -> ?lprr_max_k:int -> unit -> row list
(** Defaults: seed 3, K in 10, 20, 30, 40, 3 platforms per K, LPRR
    measured for K <= 20 (its K^2 LP solves dominate the budget). *)

val table : row list -> Report.table
