(** Figure 6: LPRR versus G (and LPRG for context) relative to the LP
    upper bound, on a small set of topologies.

    The paper evaluates LPRR on only 80 topologies with K in 15..25
    because of its K^2 LP-solve cost, and finds its MAXMIN values very
    close to the LP bound — where LPRG sagged. *)

type row = {
  k : int;
  platforms : int;
  maxmin_g : float;
  sum_g : float;
  maxmin_lprr : float;
  sum_lprr : float;
  maxmin_lprg : float;
  sum_lprg : float;
  lprr_pivots : float;
  (** Mean total simplex pivots of the (warm-started) MAXMIN LPRR run. *)
  lprr_reinversions : float;  (** mean basis reinversions per run *)
  lprr_warm_starts : float;  (** mean warm-started solves per run *)
}

val run : ?seed:int -> ?ks:int list -> ?per_k:int -> unit -> row list
(** Defaults: seed 2, K in 15, 20, 25, 4 platforms per K (the paper used
    ~27 per K; scale with [~per_k]). *)

val table : row list -> Report.table
