(** Adaptive periodic rescheduling under resource variation.

    The paper's third argument for steady-state scheduling (Section 1):
    "because the schedule is periodic, it is possible to dynamically
    record the observed performance during the current period, and to
    inject this information into the algorithm that will compute the
    optimal schedule for the next period ... to react on the fly to
    resource availability variations, which is the common case on
    non-dedicated Grid platforms".

    This experiment makes the claim measurable.  A platform degrades
    (and recovers) over a sequence of periods; a {e static} scheduler
    keeps the allocation computed at period 0, delivering only the
    largest feasible fraction of it each period, while an {e adaptive}
    scheduler re-runs LPRG on the observed capacities every period.  The
    trace of achieved MAXMIN values quantifies the benefit of
    periodicity.  (Connection counts are scaled fractionally when a cap
    shrinks — a continuous approximation of dropping connections,
    adequate for the comparison and noted here.) *)

type event = {
  at_period : int;
  bandwidth_factor : float;  (** scales every backbone bw; 1 = no change *)
  speed_factor : float;  (** scales every cluster speed; 1 = no change *)
}

type trace_point = {
  period : int;
  static_value : float;  (** MAXMIN delivered by the period-0 allocation *)
  adaptive_value : float;  (** MAXMIN after re-optimizing on current capacities *)
}

val run :
  ?seed:int ->
  ?k:int ->
  ?periods:int ->
  ?events:event list ->
  unit ->
  (trace_point list, string) result
(** Defaults: seed 9, k = 10, 10 periods, a 60% backbone-bandwidth dip
    over periods 3–6.  Events apply cumulatively from their period on
    (a later event replaces the factors). *)

val table : trace_point list -> Report.table

val deliverable_fraction :
  Dls_core.Problem.t -> Dls_core.Allocation.t -> float
(** Largest [lambda <= 1] such that [lambda * allocation] satisfies the
    problem's capacities — how much of a stale plan a degraded platform
    still carries.  Exposed for tests. *)
