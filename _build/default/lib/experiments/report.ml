type table = {
  title : string;
  header : string list;
  rows : string list list;
}

let cell_float v =
  if Float.is_nan v then "nan" else Printf.sprintf "%.4g" v

let pp_table fmt t =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun m r -> Stdlib.max m (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> width.(i) <- Stdlib.max width.(i) (String.length cell)))
    all;
  let pad i cell = cell ^ String.make (width.(i) - String.length cell) ' ' in
  let pp_row r =
    Format.fprintf fmt "| %s |@," (String.concat " | " (List.mapi pad r))
  in
  let rule =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') width))
    ^ "+"
  in
  Format.fprintf fmt "@[<v>%s@,%s@," t.title rule;
  pp_row t.header;
  Format.fprintf fmt "%s@," rule;
  List.iter pp_row t.rows;
  Format.fprintf fmt "%s@]@." rule

let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  String.concat "\n"
    (List.map (fun r -> String.concat "," (List.map quote r)) (t.header :: t.rows))
  ^ "\n"

let write_csv ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))
