(** Section 6.1 aggregate statistics.

    The paper reports, over the full sweep: the ratio of LPRG's
    objective value to G's — 1.98 for MAXMIN and 1.02 for SUM — and that
    LPR's performance is "very poor", often 0 (all betas rounded down to
    zero).  This module reproduces those aggregates over a sampled
    sweep. *)

type summary = {
  platforms : int;
  lprg_over_g_maxmin : float;  (** mean of per-platform ratios *)
  lprg_over_g_sum : float;
  lpr_zero_fraction : float;  (** share of platforms where LPR's SUM is 0 *)
  lpr_over_lp_sum : float;  (** mean SUM(LPR)/SUM(LP) *)
  g_over_lp_sum : float;
  lprg_over_lp_sum : float;
}

val run : ?seed:int -> ?ks:int list -> ?per_k:int -> unit -> summary
(** Defaults: seed 4, K in 5,15,...,45, 4 platforms per K. *)

val table : summary -> Report.table
