(** Generic resumable, sharded evaluation runner.

    The machinery behind {!Campaign} — per-index evaluation fanned out
    over domains, append-only JSONL logging, periodic checkpoint
    manifests, torn-tail truncation and resume-by-replay — factored out
    so other sweeps (the {!Resilience} fault-rate experiment) inherit
    crash-safety without re-implementing it.  An experiment supplies a
    {!spec}: the index space, the entry codec, the evaluator, and two
    manifest closures that keep each experiment's on-disk manifest
    format (and its config-mismatch refusal) under its own control. *)

type 'e spec = {
  log_label : string;  (** prefix of [Logs] messages, e.g. ["campaign"] *)
  total : int;  (** size of the index space; indices are [0 .. total-1] *)
  index_of : 'e -> int;
  to_line : 'e -> string;  (** one JSONL line, no trailing newline *)
  of_line : string -> ('e, string) result;  (** total: torn lines → [Error] *)
  evaluate : int -> 'e;
      (** evaluate one index from scratch; must be a pure function of
          the index (up to wall-clock fields) for resume to be sound *)
  skip_reason : 'e -> string option;
      (** [Some reason] marks the entry as a skip (warned, counted
          separately); [None] marks a successful record *)
  entry_times : 'e -> (string * float) list;
      (** labelled wall-clock samples to accumulate into
          {!summary.s_times} (empty for skips) *)
  time_labels : string list;  (** sample labels, in reporting order *)
  log_time_stats : bool;
      (** log a mean/median/p95 digest per label after the run *)
  write_manifest : out:string -> completed:int -> unit;
      (** atomically write the experiment's manifest next to [out] *)
  check_manifest : path:string -> (unit, string) result;
      (** on resume: verify a manifest (if it exists) matches the
          current config; [Error] refuses the resume *)
}

type summary = {
  s_total : int;
  s_completed : int;  (** successful records, replayed + new *)
  s_skipped : int;  (** skipped entries, replayed + new *)
  s_evaluated : int;  (** entries computed by this run *)
  s_replayed : int;  (** entries recovered from the log on resume *)
  s_wall : float;  (** seconds spent in this run *)
  s_times : (string * float array) list;
      (** per-label wall-clock samples from this run's records *)
}

val load_log :
  of_line:(string -> ('e, string) result) ->
  path:string ->
  ('e list * int, string) result
(** Replay an existing JSONL log: entries in file order, plus the byte
    length of the valid prefix.  A final line that is unparseable or
    lacks its trailing newline is dropped (interrupted write); an
    invalid line {e before} the end is an error. *)

val write_atomic : path:string -> string -> unit
(** Write a file via temp-and-rename, so a crash mid-write can only lose
    the update, never produce a torn file (the manifest discipline). *)

val run :
  ?domains:int ->
  ?chunk:int ->
  ?checkpoint_every:int ->
  ?shards:int ->
  ?shard:int ->
  ?resume:bool ->
  ?out:string ->
  ?on_entry:('e -> unit) ->
  'e spec ->
  (summary, string) result
(** Same contract as {!Campaign.run} (which is now this function under a
    campaign spec): evaluate every pending index, streaming entries to
    [out] and checkpointing every [checkpoint_every] entries; with
    [resume], replay [out] first (after [check_manifest]) and evaluate
    only the frontier; [shards]/[shard] partition indices round-robin;
    [domains]/[chunk] fan evaluation out over a worker pool. *)
