module Stats = Dls_util.Stats

type summary = {
  platforms : int;
  lprg_over_g_maxmin : float;
  lprg_over_g_sum : float;
  lpr_zero_fraction : float;
  lpr_over_lp_sum : float;
  g_over_lp_sum : float;
  lprg_over_lp_sum : float;
}

let eps = 1e-9

let run ?(seed = 4) ?(ks = [ 5; 15; 25; 35; 45 ]) ?(per_k = 4) () =
  let records =
    Campaign.collect
      { Campaign.default_config with Campaign.seed; ks; per_k }
  in
  let ratio_mm = ref [] and ratio_sum = ref [] in
  let lpr_zero = ref 0 and lpr_lp = ref [] in
  let g_lp = ref [] and lprg_lp = ref [] in
  let used = ref 0 in
  List.iter
    (fun (r : Campaign.record) ->
      let v = r.Campaign.values in
      if v.Measure.lp_sum > eps then begin
        incr used;
        if v.Measure.g_maxmin > eps then
          ratio_mm := (v.Measure.lprg_maxmin /. v.Measure.g_maxmin) :: !ratio_mm;
        if v.Measure.g_sum > eps then
          ratio_sum := (v.Measure.lprg_sum /. v.Measure.g_sum) :: !ratio_sum;
        if v.Measure.lpr_sum <= eps then incr lpr_zero;
        lpr_lp := (v.Measure.lpr_sum /. v.Measure.lp_sum) :: !lpr_lp;
        g_lp := (v.Measure.g_sum /. v.Measure.lp_sum) :: !g_lp;
        lprg_lp := (v.Measure.lprg_sum /. v.Measure.lp_sum) :: !lprg_lp
      end)
    records;
  let mean l = Stats.mean (Array.of_list l) in
  { platforms = !used;
    lprg_over_g_maxmin = mean !ratio_mm;
    lprg_over_g_sum = mean !ratio_sum;
    lpr_zero_fraction =
      (if !used = 0 then 0.0 else float_of_int !lpr_zero /. float_of_int !used);
    lpr_over_lp_sum = mean !lpr_lp;
    g_over_lp_sum = mean !g_lp;
    lprg_over_lp_sum = mean !lprg_lp }

let table s =
  { Report.title = "Section 6.1 aggregates (paper: LPRG/G = 1.98 MAXMIN, 1.02 SUM; LPR poor)";
    header = [ "statistic"; "value" ];
    rows =
      [ [ "platforms"; string_of_int s.platforms ];
        [ "mean LPRG/G (MAXMIN)"; Report.cell_float s.lprg_over_g_maxmin ];
        [ "mean LPRG/G (SUM)"; Report.cell_float s.lprg_over_g_sum ];
        [ "fraction of platforms with LPR = 0"; Report.cell_float s.lpr_zero_fraction ];
        [ "mean SUM(LPR)/SUM(LP)"; Report.cell_float s.lpr_over_lp_sum ];
        [ "mean SUM(G)/SUM(LP)"; Report.cell_float s.g_over_lp_sum ];
        [ "mean SUM(LPRG)/SUM(LP)"; Report.cell_float s.lprg_over_lp_sum ] ] }
