(** Figure 5: objective values of LPRG and G relative to the LP upper
    bound, as a function of the number of clusters K.

    The paper plots four series over K = 5, 15, ..., 85:
    MAXMIN(LPRG)/MAXMIN(LP), SUM(LPRG)/SUM(LP), MAXMIN(G)/MAXMIN(LP) and
    SUM(G)/SUM(LP), each averaged over random platforms drawn from the
    Table 1 grid.  Expected shape: SUM(LPRG) approaches 1 as K grows and
    dominates SUM(G); both MAXMIN series sag toward ~0.65 at large K. *)

type row = {
  k : int;
  platforms : int;  (** platforms actually averaged (LP > 0) *)
  maxmin_lprg : float;
  sum_lprg : float;
  maxmin_g : float;
  sum_g : float;
  maxmin_lprg_sd : float;  (** std. deviation across platforms *)
  maxmin_g_sd : float;
}

val run : ?seed:int -> ?ks:int list -> ?per_k:int -> unit -> row list
(** Defaults: seed 1, K in 5,15,...,55, 4 platforms per K.  (The paper's
    full range reaches 85; pass [~ks] to extend — runtime grows roughly
    as K^3 per platform.) *)

val table : row list -> Report.table
