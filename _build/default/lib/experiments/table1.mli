(** Table 1: the simulation campaign's parameter grid, plus generated-
    platform sanity statistics (how large the sampled topologies are). *)

val grid_table : unit -> Report.table
(** The parameter rows exactly as printed in the paper's Table 1, plus
    the grid cardinality and the paper's 10-platforms-per-setting
    convention. *)

type stat_row = {
  k : int;
  mean_backbones : float;
  mean_degree : float;
  mean_route_len : float;  (** mean backbone hops between cluster pairs *)
}

val sample_stats : ?seed:int -> ?ks:int list -> ?per_k:int -> unit -> stat_row list
(** Structural statistics of platforms sampled from the grid (defaults:
    seed 5, K in 5,15,...,45, 5 platforms per K). *)

val stats_table : stat_row list -> Report.table
