(** Table and CSV rendering shared by the experiment harness and the
    bench executable. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
}

val pp_table : Format.formatter -> table -> unit
(** Fixed-width, pipe-separated rendering with a title rule. *)

val to_csv : table -> string
(** Header plus rows, comma-separated.  Cells containing commas or
    quotes are quoted. *)

val write_csv : path:string -> table -> unit
(** @raise Sys_error on an unwritable path. *)

val cell_float : float -> string
(** 4-significant-digit rendering used across all reports. *)
