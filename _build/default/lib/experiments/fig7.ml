module Gen = Dls_platform.Generator
module Stats = Dls_util.Stats

type row = {
  k : int;
  platforms : int;
  time_g : float;
  time_lp : float;
  time_lpr : float;
  time_lprg : float;
  time_lprr : float option;
  lprr_pivots : float option;
  lprr_reinversions : float option;
}

let run ?(seed = 3) ?(ks = [ 10; 20; 30; 40 ]) ?(per_k = 3) ?(lprr_max_k = 20) () =
  (* One campaign with LPRR gated by K (it costs K² LP solves). *)
  let records =
    Campaign.collect
      { Campaign.default_config with
        Campaign.seed; ks; per_k;
        with_lprr = true;
        lprr_max_k = Some lprr_max_k }
  in
  List.map
    (fun k ->
      let tg = ref [] and tlp = ref [] and tlpr = ref [] in
      let tlprg = ref [] and tlprr = ref [] in
      let pivots = ref [] and reinv = ref [] in
      let used = ref 0 in
      List.iter
        (fun (r : Campaign.record) ->
          let v = r.Campaign.values in
          if r.Campaign.params.Gen.k = k then begin
            incr used;
            tg := v.Measure.time_g :: !tg;
            tlp := v.Measure.time_lp :: !tlp;
            tlpr := v.Measure.time_lpr :: !tlpr;
            tlprg := v.Measure.time_lprg :: !tlprg;
            (match v.Measure.time_lprr with
             | Some t -> tlprr := t :: !tlprr
             | None -> ());
            (match v.Measure.lprr_counters with
             | Some c ->
               pivots := float_of_int c.Dls_lp.Revised_simplex.pivots :: !pivots;
               reinv :=
                 float_of_int c.Dls_lp.Revised_simplex.reinversions :: !reinv
             | None -> ())
          end)
        records;
      let mean l = Stats.mean (Array.of_list l) in
      let opt l = if l = [] then None else Some (mean l) in
      { k; platforms = !used;
        time_g = mean !tg;
        time_lp = mean !tlp;
        time_lpr = mean !tlpr;
        time_lprg = mean !tlprg;
        time_lprr = opt !tlprr;
        lprr_pivots = opt !pivots;
        lprr_reinversions = opt !reinv })
    ks

let table rows =
  { Report.title = "Figure 7: mean running time (seconds) by K";
    header =
      [ "K"; "platforms"; "G"; "LP"; "LPR"; "LPRG"; "LPRR"; "LPRR pivots";
        "LPRR reinv" ];
    rows =
      (let opt = function Some t -> Report.cell_float t | None -> "-" in
       List.map
         (fun r ->
           [ string_of_int r.k; string_of_int r.platforms;
             Report.cell_float r.time_g; Report.cell_float r.time_lp;
             Report.cell_float r.time_lpr; Report.cell_float r.time_lprg;
             opt r.time_lprr; opt r.lprr_pivots; opt r.lprr_reinversions ])
         rows) }
