(** Streaming CSV view of a Table 1 campaign.

    Thin wrapper over {!Campaign}: platforms are drawn from the grid
    marginals with per-index PRNG streams, evaluated in bounded parallel
    chunks, and each completed record is handed to a callback in
    campaign order — so the CLI can stream CSV rows to disk as they
    finish.  For crash-safe logging, sharding and resume, use the
    [campaign] subcommand / {!Campaign.run} directly. *)

type record = Campaign.record = {
  index : int;  (** 0-based position in the campaign *)
  params : Dls_platform.Generator.params;  (** the sampled grid point *)
  active_apps : int;
  values : Measure.values;
}

val run :
  ?seed:int ->
  ?ks:int list ->
  ?per_k:int ->
  ?with_lprr:bool ->
  ?on_record:(record -> unit) ->
  unit ->
  int * int
(** [run ()] evaluates [per_k] (default 5) platforms for every K
    (default 5, 15, ..., 55), calling [on_record] for each successful
    evaluation in campaign order.  Returns
    [(completed, skipped)].  Deterministic for a given seed regardless
    of parallelism. *)

val csv_header : string

val to_csv_row : record -> string
(** One comma-separated line matching {!csv_header}: the grid point,
    LP bounds, every heuristic's objective values and timings. *)
