module Gen = Dls_platform.Generator

type record = Campaign.record = {
  index : int;
  params : Gen.params;
  active_apps : int;
  values : Measure.values;
}

let run ?(seed = 12) ?(ks = [ 5; 15; 25; 35; 45; 55 ]) ?(per_k = 5)
    ?(with_lprr = false) ?(on_record = fun _ -> ()) () =
  let config =
    { Campaign.default_config with
      Campaign.seed; ks; per_k; with_lprr }
  in
  match
    Campaign.run
      ~on_entry:(function
        | Campaign.Record r -> on_record r
        | Campaign.Skipped { index; reason } ->
          Logs.warn (fun m -> m "sweep: platform %d skipped: %s" index reason))
      config
  with
  | Ok s -> (s.Campaign.s_completed, s.Campaign.s_skipped)
  | Error msg ->
    (* No log file is involved, so the only errors are invalid configs. *)
    invalid_arg ("Sweep.run: " ^ msg)

let csv_header =
  String.concat ","
    [ "index"; "k"; "connectivity"; "heterogeneity"; "mean_g"; "mean_bw";
      "mean_maxcon"; "active_apps"; "lp_sum"; "lp_maxmin"; "g_sum"; "g_maxmin";
      "lpr_sum"; "lpr_maxmin"; "lprg_sum"; "lprg_maxmin"; "lprr_sum";
      "lprr_maxmin"; "time_lp"; "time_g"; "time_lpr"; "time_lprg"; "time_lprr" ]

let to_csv_row r =
  let f v = Printf.sprintf "%.6g" v in
  let opt = function Some v -> f v | None -> "" in
  let v = r.values in
  String.concat ","
    [ string_of_int r.index; string_of_int r.params.Gen.k;
      f r.params.Gen.connectivity; f r.params.Gen.heterogeneity;
      f r.params.Gen.mean_g; f r.params.Gen.mean_bw; f r.params.Gen.mean_maxcon;
      string_of_int r.active_apps;
      f v.Measure.lp_sum; f v.Measure.lp_maxmin; f v.Measure.g_sum;
      f v.Measure.g_maxmin; f v.Measure.lpr_sum; f v.Measure.lpr_maxmin;
      f v.Measure.lprg_sum; f v.Measure.lprg_maxmin; opt v.Measure.lprr_sum;
      opt v.Measure.lprr_maxmin; f v.Measure.time_lp; f v.Measure.time_g;
      f v.Measure.time_lpr; f v.Measure.time_lprg; opt v.Measure.time_lprr ]
