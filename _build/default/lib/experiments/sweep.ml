module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
open Dls_core

type record = {
  index : int;
  params : Gen.params;
  active_apps : int;
  values : Measure.values;
}

let run ?(seed = 12) ?(ks = [ 5; 15; 25; 35; 45; 55 ]) ?(per_k = 5)
    ?(with_lprr = false) ?(on_record = fun _ -> ()) () =
  let rng = Prng.create ~seed in
  (* Sample the whole campaign sequentially: reproducible and cheap
     relative to evaluation. *)
  let inputs =
    List.concat_map
      (fun k ->
        List.init per_k (fun _ ->
            let params = Measure.sample_params rng ~k in
            let platform = Gen.generate rng params in
            let problem = Measure.assign_workload rng platform in
            (params, problem, Prng.split rng)))
      ks
  in
  let evaluations =
    Dls_util.Parallel.map
      (fun (params, problem, coin) ->
        (params, problem, Measure.evaluate ~with_lprr ~rng:coin problem))
      (Array.of_list inputs)
  in
  let completed = ref 0 and skipped = ref 0 in
  Array.iteri
    (fun index (params, problem, outcome) ->
      match outcome with
      | Error msg ->
        incr skipped;
        Logs.warn (fun m -> m "sweep: platform %d skipped: %s" index msg)
      | Ok values ->
        incr completed;
        on_record
          { index; params;
            active_apps = List.length (Problem.active problem);
            values })
    evaluations;
  (!completed, !skipped)

let csv_header =
  String.concat ","
    [ "index"; "k"; "connectivity"; "heterogeneity"; "mean_g"; "mean_bw";
      "mean_maxcon"; "active_apps"; "lp_sum"; "lp_maxmin"; "g_sum"; "g_maxmin";
      "lpr_sum"; "lpr_maxmin"; "lprg_sum"; "lprg_maxmin"; "lprr_sum";
      "lprr_maxmin"; "time_lp"; "time_g"; "time_lpr"; "time_lprg"; "time_lprr" ]

let to_csv_row r =
  let f v = Printf.sprintf "%.6g" v in
  let opt = function Some v -> f v | None -> "" in
  let v = r.values in
  String.concat ","
    [ string_of_int r.index; string_of_int r.params.Gen.k;
      f r.params.Gen.connectivity; f r.params.Gen.heterogeneity;
      f r.params.Gen.mean_g; f r.params.Gen.mean_bw; f r.params.Gen.mean_maxcon;
      string_of_int r.active_apps;
      f v.Measure.lp_sum; f v.Measure.lp_maxmin; f v.Measure.g_sum;
      f v.Measure.g_maxmin; f v.Measure.lpr_sum; f v.Measure.lpr_maxmin;
      f v.Measure.lprg_sum; f v.Measure.lprg_maxmin; opt v.Measure.lprr_sum;
      opt v.Measure.lprr_maxmin; f v.Measure.time_lp; f v.Measure.time_g;
      f v.Measure.time_lpr; f v.Measure.time_lprg; opt v.Measure.time_lprr ]
