module P = Dls_platform.Platform
module Prng = Dls_util.Prng
open Dls_core

type event = {
  at_period : int;
  bandwidth_factor : float;
  speed_factor : float;
}

type trace_point = {
  period : int;
  static_value : float;
  adaptive_value : float;
}

let scaled_platform base ~bandwidth_factor ~speed_factor =
  let clusters =
    Array.init (P.num_clusters base) (fun k ->
        let c = P.cluster base k in
        { c with P.speed = c.P.speed *. speed_factor })
  in
  let backbones =
    Array.init (P.num_backbones base) (fun i ->
        let b = P.backbone base i in
        { b with P.bw = b.P.bw *. bandwidth_factor })
  in
  P.make ~clusters ~topology:(P.topology base) ~backbones

let deliverable_fraction problem alloc =
  let p = Problem.platform problem in
  let kk = Problem.num_clusters problem in
  let lambda = ref 1.0 in
  let constrain usage capacity =
    if usage > 1e-12 then lambda := Float.min !lambda (capacity /. usage)
  in
  (* CPU (Eq. 1). *)
  for l = 0 to kk - 1 do
    let load = ref 0.0 in
    for k = 0 to kk - 1 do
      load := !load +. alloc.Allocation.alpha.(k).(l)
    done;
    constrain !load (P.speed p l)
  done;
  (* Local links (Eq. 2). *)
  for k = 0 to kk - 1 do
    let traffic = ref 0.0 in
    for l = 0 to kk - 1 do
      if l <> k then
        traffic :=
          !traffic +. alloc.Allocation.alpha.(k).(l) +. alloc.Allocation.alpha.(l).(k)
    done;
    constrain !traffic (P.local_bw p k)
  done;
  (* Connection slots (Eq. 3), connections scaled fractionally. *)
  for link = 0 to P.num_backbones p - 1 do
    let used =
      List.fold_left
        (fun acc (k, l) -> acc + alloc.Allocation.beta.(k).(l))
        0 (P.routes_through p link)
    in
    constrain (float_of_int used) (float_of_int (P.backbone p link).P.max_connect)
  done;
  (* Route bandwidth (Eq. 4) under the current per-connection grants. *)
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if k <> l && alloc.Allocation.alpha.(k).(l) > 1e-12 then begin
        match P.route_bottleneck p k l with
        | None -> lambda := 0.0
        | Some bw when bw = infinity -> ()
        | Some bw ->
          constrain alloc.Allocation.alpha.(k).(l)
            (float_of_int alloc.Allocation.beta.(k).(l) *. bw)
      end
    done
  done;
  Float.max 0.0 (Float.min 1.0 !lambda)

let default_events =
  [ { at_period = 3; bandwidth_factor = 0.4; speed_factor = 1.0 };
    { at_period = 7; bandwidth_factor = 1.0; speed_factor = 1.0 } ]

(* The scheduler under study: the best of G, LPRG and LPRR on MAXMIN —
   a reasonable production policy at this scale (LPRR costs ~K^2 LP
   solves but recovers the fairness G and LPRG lose to their rounding
   granularity; see Figure 6). *)
let best_plan ?(rng = Prng.create ~seed:0x0ADA) problem =
  match Lprg.solve ~objective:Lp_relax.Maxmin problem with
  | Error msg -> Error msg
  | Ok lprg ->
    let candidates =
      (Greedy.solve problem :: lprg
       ::
       (match Lprr.solve ~objective:Lp_relax.Maxmin ~rng problem with
        | Ok stats -> [ stats.Lprr.allocation ]
        | Error _ -> []))
    in
    Ok
      (List.fold_left
         (fun best a ->
           if
             Allocation.maxmin_objective problem a
             > Allocation.maxmin_objective problem best
           then a
           else best)
         (List.hd candidates) (List.tl candidates))

let run ?(seed = 9) ?(k = 10) ?(periods = 10) ?(events = default_events) () =
  let rng = Prng.create ~seed in
  let base_problem = Measure.sample_problem rng ~k in
  let base_platform = Problem.platform base_problem in
  let payoffs =
    Array.init k (Problem.payoff base_problem)
  in
  match best_plan base_problem with
  | Error msg -> Error ("initial plan failed: " ^ msg)
  | Ok initial ->
    let trace = ref [] in
    let current_factors = ref (1.0, 1.0) in
    let failed = ref None in
    for period = 0 to periods - 1 do
      if !failed = None then begin
        List.iter
          (fun e ->
            if e.at_period = period then
              current_factors := (e.bandwidth_factor, e.speed_factor))
          events;
        let bandwidth_factor, speed_factor = !current_factors in
        let platform = scaled_platform base_platform ~bandwidth_factor ~speed_factor in
        let problem = Problem.make platform ~payoffs in
        let static_value =
          deliverable_fraction problem initial
          *. Allocation.maxmin_objective base_problem initial
        in
        match best_plan problem with
        | Error msg -> failed := Some ("period plan failed: " ^ msg)
        | Ok adapted ->
          let adaptive_value = Allocation.maxmin_objective problem adapted in
          trace := { period; static_value; adaptive_value } :: !trace
      end
    done;
    (match !failed with
     | Some msg -> Error msg
     | None -> Ok (List.rev !trace))

let table points =
  { Report.title =
      "Adaptivity: static period-0 plan vs per-period re-optimization (MAXMIN)";
    header = [ "period"; "static"; "adaptive"; "adaptive/static" ];
    rows =
      List.map
        (fun tp ->
          [ string_of_int tp.period;
            Report.cell_float tp.static_value;
            Report.cell_float tp.adaptive_value;
            (if tp.static_value > 1e-9 then
               Report.cell_float (tp.adaptive_value /. tp.static_value)
             else "-") ])
        points }
