module P = Dls_platform.Platform
module Prng = Dls_util.Prng
module Stats = Dls_util.Stats
module G = Dls_graph.Graph

let grid_table () =
  { Report.title =
      "Table 1: parameter grid (115,200 settings x 10 platforms each)";
    header = [ "parameter"; "values" ];
    rows =
      [ [ "K"; "5, 15, ..., 95" ];
        [ "connectivity"; "0.1, 0.2, ..., 0.8" ];
        [ "heterogeneity"; "0.2, 0.4, 0.6, 0.8" ];
        [ "mean g"; "50, 250, 350, 450" ];
        [ "mean bw"; "10, 20, ..., 90" ];
        [ "mean maxcon"; "5, 15, ..., 95" ];
        [ "cluster speed"; "100 (fixed)" ] ] }

type stat_row = {
  k : int;
  mean_backbones : float;
  mean_degree : float;
  mean_route_len : float;
}

let sample_stats ?(seed = 5) ?(ks = [ 5; 15; 25; 35; 45 ]) ?(per_k = 5) () =
  let rng = Prng.create ~seed in
  List.map
    (fun k ->
      let backbones = ref [] and degree = ref [] and route_len = ref [] in
      for _ = 1 to per_k do
        let problem = Measure.sample_problem rng ~k in
        let p = Dls_core.Problem.platform problem in
        backbones := float_of_int (P.num_backbones p) :: !backbones;
        let topo = P.topology p in
        degree :=
          (2.0 *. float_of_int (G.num_edges topo) /. float_of_int (G.num_nodes topo))
          :: !degree;
        let lens = ref [] in
        for a = 0 to k - 1 do
          for b = 0 to k - 1 do
            if a <> b then begin
              match P.route p a b with
              | Some links -> lens := float_of_int (List.length links) :: !lens
              | None -> ()
            end
          done
        done;
        route_len := Stats.mean (Array.of_list !lens) :: !route_len
      done;
      let mean l = Stats.mean (Array.of_list l) in
      { k; mean_backbones = mean !backbones; mean_degree = mean !degree;
        mean_route_len = mean !route_len })
    ks

let stats_table rows =
  { Report.title = "Generated-platform structure by K (sampled from the grid)";
    header = [ "K"; "mean backbones"; "mean router degree"; "mean route length" ];
    rows =
      List.map
        (fun r ->
          [ string_of_int r.k; Report.cell_float r.mean_backbones;
            Report.cell_float r.mean_degree; Report.cell_float r.mean_route_len ])
        rows }
