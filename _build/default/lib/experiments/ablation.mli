(** Ablation studies for the design choices called out in DESIGN.md.

    Three questions the paper raises but does not plot:

    - {b Rounding policy} (Section 6.2): the paper notes that an LPRR
      variant rounding up/down "with equal probability ... performed
      much worse than LPRR".  {!rounding_policy} measures both variants
      on the same topologies.

    - {b Network-tight regime}: averaged over the whole Table 1 grid the
      SUM objective is capacity-dominated and every method saturates it;
      the integer-connection effects the paper highlights live in the
      corner where per-connection bandwidth and connection caps are
      small.  {!network_tight} pins [bw = 10], [maxcon = 5] and shows
      SUM(G), SUM(LPR), SUM(LPRG) separate from the LP bound.

    - {b Workload sensitivity}: {!workload} sweeps [app_fraction] and
      [source_speed_factor], exhibiting the collapse to trivial ratios
      in the literal one-app-per-cluster reading (DESIGN.md 2.2). *)

type rounding_row = {
  k : int;
  platforms : int;
  maxmin_lprr : float;  (** mean MAXMIN(LPRR)/LP, probability-proportional *)
  maxmin_equal : float;  (** mean for the equal-probability variant *)
}

val rounding_policy :
  ?seed:int -> ?ks:int list -> ?per_k:int -> unit -> rounding_row list

val rounding_table : rounding_row list -> Report.table

type tight_row = {
  k : int;
  platforms : int;
  sum_g : float;
  sum_lpr : float;
  sum_lprg : float;
  maxmin_g : float;
  maxmin_lprg : float;
}

val network_tight :
  ?seed:int -> ?ks:int list -> ?per_k:int -> unit -> tight_row list

val tight_table : tight_row list -> Report.table

type baseline_row = {
  k : int;
  platforms : int;
  idealized_over_realistic : float;
  (** how much the unlimited-connection model of the paper's reference
      [34] over-promises, as a mean ratio to the realistic LP bound *)
  repaired_over_realistic : float;
  (** what survives once its allocations are repaired to respect
      connection caps *)
}

val unbounded_baseline :
  ?seed:int -> ?ks:int list -> ?per_k:int -> unit -> baseline_row list
(** Defaults: seed 11, K in 5, 10, 15, 4 platforms per K, MAXMIN; uses
    the connection-tight corner of the grid (bw = 10, maxcon = 5) where
    the difference between the models is visible. *)

val baseline_table : baseline_row list -> Report.table

type topology_row = {
  model : string;
  platforms : int;
  mean_backbones : float;
  maxmin_g : float;  (** mean MAXMIN(G)/LP *)
  maxmin_lprg : float;
}

val topology_models :
  ?seed:int -> ?k:int -> ?per_model:int -> unit -> topology_row list
(** Heuristic quality across topology generators — the paper's
    Erdos-Renyi draw vs Waxman geography vs Barabasi-Albert
    preferential attachment — at fixed K (default 15, 4 platforms per
    model). *)

val topology_table : topology_row list -> Report.table

type workload_row = {
  app_fraction : float;
  source_speed_factor : float;
  platforms : int;
  maxmin_g_ratio : float;
  maxmin_lprg_ratio : float;
}

val workload :
  ?seed:int -> ?k:int -> ?per_setting:int -> unit -> workload_row list

val workload_table : workload_row list -> Report.table
