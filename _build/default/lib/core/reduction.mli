(** The NP-completeness gadget of Section 4 of the paper.

    From an instance of MAXIMUM-INDEPENDENT-SET on a graph [G = (V, E)],
    Theorem 1 builds a STEADY-STATE-DIVISIBLE-LOAD instance whose
    optimal MAXMIN throughput equals the independence number of [G]:
    one source cluster [C^0] (speed 0, local capacity [|V|], the only
    active application) plus one unit-speed cluster per vertex; each
    edge [e_k] contributes a dedicated backbone link [lcommon_k] with
    [bw = max-connect = 1], and the fixed route from [C^0] to the
    cluster of vertex [V_i] threads through [lcommon_k] for every edge
    [k] incident to [V_i].  Lemma 1: two routes share a link iff their
    vertices are adjacent — so a set of simultaneously usable routes is
    exactly an independent set.

    This module builds the gadget (with explicit route overrides, since
    shortest-path routing would not reproduce the construction) and maps
    witnesses in both directions; the test suite checks the equivalence
    against the exact MIS solver. *)

val build : Dls_graph.Graph.t -> Problem.t
(** Instance I2 of the reduction for the given graph.
    @raise Invalid_argument on graphs with zero vertices. *)

val allocation_of_independent_set : Problem.t -> int list -> Allocation.t
(** The canonical allocation shipping one load unit to each vertex of an
    independent set ([alpha_{0,i} = beta_{0,i} = 1]); feasible whenever
    the set is independent, with MAXMIN throughput equal to its size.
    Vertices are 0-based graph nodes.
    @raise Invalid_argument on out-of-range vertices. *)

val independent_set_of_allocation : ?eps:float -> Allocation.t -> int list
(** The vertices whose cluster receives work — an independent set for
    every feasible integral allocation (proof of Theorem 1). *)
