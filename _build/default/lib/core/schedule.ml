module B = Dls_num.Bigint
module Q = Dls_num.Rat
module P = Dls_platform.Platform

type exact = { alpha : Q.t array array; beta : int array array }

let exact_of_float ?approx_max_den alloc =
  let lift v =
    match approx_max_den with
    | None -> Q.of_float v
    | Some max_den -> Q.approx_of_float_below v ~max_den
  in
  { alpha = Array.map (Array.map lift) alloc.Allocation.alpha;
    beta = Array.map Array.copy alloc.Allocation.beta }

let scale_down e ~factor =
  if Q.sign factor <= 0 || Q.compare factor Q.one > 0 then
    invalid_arg "Schedule.scale_down: factor must be in (0, 1]";
  { e with alpha = Array.map (Array.map (Q.mul factor)) e.alpha }

type compute_entry = { cluster : int; app : int; amount : B.t }

type transfer_entry = { src : int; dst : int; amount : B.t; connections : int }

type t = {
  period : B.t;
  computes : compute_entry list;
  transfers : transfer_entry list;
}

let build e =
  let period =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc a -> if Q.is_zero a then acc else B.lcm acc (Q.den a))
          acc row)
      B.one e.alpha
  in
  let qperiod = Q.of_bigint period in
  let integral_amount a =
    let v = Q.mul a qperiod in
    assert (Q.is_integer v);
    Q.floor v
  in
  let kk = Array.length e.alpha in
  let computes = ref [] and transfers = ref [] in
  for k = kk - 1 downto 0 do
    for l = kk - 1 downto 0 do
      let a = e.alpha.(k).(l) in
      if not (Q.is_zero a) then begin
        let amount = integral_amount a in
        computes := { cluster = l; app = k; amount } :: !computes;
        if k <> l then
          transfers :=
            { src = k; dst = l; amount; connections = e.beta.(k).(l) } :: !transfers
      end
    done
  done;
  { period; computes = !computes; transfers = !transfers }

let app_throughput t k =
  let total =
    List.fold_left
      (fun acc c -> if c.app = k then B.add acc c.amount else acc)
      B.zero t.computes
  in
  Q.make total t.period

let validate problem t =
  let p = Problem.platform problem in
  let kk = P.num_clusters p in
  let qperiod = Q.of_bigint t.period in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    if B.sign t.period <= 0 then raise (Bad "non-positive period");
    List.iter
      (fun c ->
        if c.cluster < 0 || c.cluster >= kk || c.app < 0 || c.app >= kk then
          raise (Bad "compute entry references unknown cluster");
        if B.sign c.amount < 0 then raise (Bad "negative compute amount"))
      t.computes;
    List.iter
      (fun tr ->
        if tr.src < 0 || tr.src >= kk || tr.dst < 0 || tr.dst >= kk || tr.src = tr.dst
        then raise (Bad "transfer entry references bad clusters");
        if B.sign tr.amount < 0 then raise (Bad "negative transfer amount");
        if tr.connections < 0 then raise (Bad "negative connection count"))
      t.transfers;
    (* Equation 1: per-cluster computation fits in one period. *)
    for l = 0 to kk - 1 do
      let load =
        List.fold_left
          (fun acc c -> if c.cluster = l then B.add acc c.amount else acc)
          B.zero t.computes
      in
      let cap = Q.mul (Q.of_float (P.speed p l)) qperiod in
      if Q.compare (Q.of_bigint load) cap > 0 then
        raise (Bad (Printf.sprintf "cluster %d computes more than s_%d * T_p" l l))
    done;
    (* Equation 2: per-cluster local-link traffic fits in one period. *)
    for k = 0 to kk - 1 do
      let traffic =
        List.fold_left
          (fun acc tr ->
            if tr.src = k || tr.dst = k then B.add acc tr.amount else acc)
          B.zero t.transfers
      in
      let cap = Q.mul (Q.of_float (P.local_bw p k)) qperiod in
      if Q.compare (Q.of_bigint traffic) cap > 0 then
        raise (Bad (Printf.sprintf "cluster %d local link overloaded" k))
    done;
    (* Equations 3 and 4: connection counts and per-route bandwidth. *)
    for link = 0 to P.num_backbones p - 1 do
      let used =
        List.fold_left
          (fun acc tr ->
            match P.route p tr.src tr.dst with
            | Some links when List.mem link links -> acc + tr.connections
            | Some _ | None -> acc)
          0 t.transfers
      in
      if used > (P.backbone p link).P.max_connect then
        raise (Bad (Printf.sprintf "backbone %d connection cap exceeded" link))
    done;
    List.iter
      (fun tr ->
        match P.route_bottleneck p tr.src tr.dst with
        | None -> raise (Bad (Printf.sprintf "no route %d -> %d" tr.src tr.dst))
        | Some bw when bw = infinity -> ()
        | Some bw ->
          let cap =
            Q.mul (Q.mul (Q.of_int tr.connections) (Q.of_float bw)) qperiod
          in
          if Q.compare (Q.of_bigint tr.amount) cap > 0 then
            raise
              (Bad
                 (Printf.sprintf "route %d -> %d ships more than beta * bw * T_p"
                    tr.src tr.dst)))
      t.transfers;
    Ok ()
  with
  | Bad msg -> err "%s" msg

let pp fmt t =
  Format.fprintf fmt "@[<v>periodic schedule, T_p = %a@," B.pp t.period;
  List.iter
    (fun c ->
      Format.fprintf fmt "  C%d computes %a units of A%d per period@," c.cluster
        B.pp c.amount c.app)
    t.computes;
  List.iter
    (fun tr ->
      Format.fprintf fmt "  C%d -> C%d: %a units over %d connection(s) per period@,"
        tr.src tr.dst B.pp tr.amount tr.connections)
    t.transfers;
  Format.fprintf fmt "@]"
