(** Capacity-utilization analysis of an allocation.

    Answers the operator's question "what limits my throughput?": for
    each platform constraint of Equations 1–4, how much of its capacity
    the allocation consumes.  Constraints at (or numerically above) full
    utilization are the bottlenecks — the resources whose upgrade the
    steady-state throughput would actually respond to, mirroring the
    shadow-price information of the LP duals at the allocation level. *)

type resource =
  | Cpu of int  (** cluster compute (Eq. 1) *)
  | Local_link of int  (** cluster serial link (Eq. 2) *)
  | Connections of int  (** backbone connection slots (Eq. 3) *)
  | Route_bandwidth of int * int  (** beta * bw ceiling of a route (Eq. 4) *)

type usage = {
  resource : resource;
  used : float;
  capacity : float;
  utilization : float;  (** [used / capacity]; 0 when capacity is 0 and unused *)
}

val utilization : Problem.t -> Allocation.t -> usage list
(** Every constraint with non-zero capacity or usage, sorted by
    decreasing utilization. *)

val bottlenecks : ?threshold:float -> Problem.t -> Allocation.t -> usage list
(** The entries at utilization [>= threshold] (default 0.999). *)

val pp_usage : Format.formatter -> usage -> unit
