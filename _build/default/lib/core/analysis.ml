module P = Dls_platform.Platform

type resource =
  | Cpu of int
  | Local_link of int
  | Connections of int
  | Route_bandwidth of int * int

type usage = {
  resource : resource;
  used : float;
  capacity : float;
  utilization : float;
}

let make_usage resource used capacity =
  let utilization =
    if capacity > 0.0 then used /. capacity else if used > 0.0 then infinity else 0.0
  in
  { resource; used; capacity; utilization }

let utilization problem alloc =
  let p = Problem.platform problem in
  let kk = Problem.num_clusters problem in
  let entries = ref [] in
  let add resource used capacity =
    if used > 0.0 || capacity > 0.0 then
      entries := make_usage resource used capacity :: !entries
  in
  for l = 0 to kk - 1 do
    let load = ref 0.0 in
    for k = 0 to kk - 1 do
      load := !load +. alloc.Allocation.alpha.(k).(l)
    done;
    add (Cpu l) !load (P.speed p l)
  done;
  for k = 0 to kk - 1 do
    let traffic = ref 0.0 in
    for l = 0 to kk - 1 do
      if l <> k then
        traffic :=
          !traffic +. alloc.Allocation.alpha.(k).(l) +. alloc.Allocation.alpha.(l).(k)
    done;
    add (Local_link k) !traffic (P.local_bw p k)
  done;
  for link = 0 to P.num_backbones p - 1 do
    let used =
      List.fold_left
        (fun acc (k, l) -> acc + alloc.Allocation.beta.(k).(l))
        0 (P.routes_through p link)
    in
    add (Connections link) (float_of_int used)
      (float_of_int (P.backbone p link).P.max_connect)
  done;
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if k <> l && alloc.Allocation.alpha.(k).(l) > 0.0 then begin
        match P.route_bottleneck p k l with
        | None -> ()
        | Some bw when bw = infinity -> ()
        | Some bw ->
          add (Route_bandwidth (k, l))
            alloc.Allocation.alpha.(k).(l)
            (float_of_int alloc.Allocation.beta.(k).(l) *. bw)
      end
    done
  done;
  List.sort
    (fun a b -> Float.compare b.utilization a.utilization)
    !entries

let bottlenecks ?(threshold = 0.999) problem alloc =
  List.filter (fun u -> u.utilization >= threshold) (utilization problem alloc)

let pp_usage fmt u =
  let name =
    match u.resource with
    | Cpu k -> Printf.sprintf "cpu(C%d)" k
    | Local_link k -> Printf.sprintf "local-link(C%d)" k
    | Connections i -> Printf.sprintf "connections(l%d)" i
    | Route_bandwidth (k, l) -> Printf.sprintf "route-bw(C%d->C%d)" k l
  in
  Format.fprintf fmt "%-22s %8.3f / %-8.3f (%.1f%%)" name u.used u.capacity
    (100.0 *. u.utilization)
