(** Steady-state scheduling of {e pipelined} divisible applications.

    The paper closes with: "one could envision extending our application
    model to address the situation in which each divisible load
    application consists of a set of tasks linked by dependencies ...
    an attractive extension of the mixed task and data parallelism
    approach".  This module implements that extension for chain-shaped
    task graphs (pipelines), the common case of the cited
    mixed-parallelism literature.

    An application is a chain of stages.  Per input load unit, stage [s]
    costs [work_s] compute units and emits [expansion_s] data units to
    the next stage.  In steady state the solver chooses, fractionally,
    where each stage executes ([y_{k,s,c}] — rate of stage-[s] input of
    application [k] processed on cluster [c]) and how inter-stage data
    flows between clusters ([f] variables), under the same platform
    constraints as the base model: per-cluster compute, per-cluster
    local-link traffic, and per-backbone connection slots with the
    [beta]-eliminated charge [flow / g_route].  Stage-0 "output" is the
    source data, which only the application's home cluster holds.

    With a single stage of unit work the model degenerates to the base
    relaxation of {!Lp_relax} — cross-checked by the test suite. *)

type stage = {
  work : float;  (** compute units per input load unit; [> 0] *)
  expansion : float;
  (** output data units per input load unit; [> 0] except on the final
      stage, where it is ignored *)
}

type app = {
  source : int;  (** cluster holding the input data *)
  payoff : float;  (** relative worth, like [pi_k]; 0 disables *)
  stages : stage list;  (** non-empty chain *)
}

type solution = {
  rates : float array;
  (** per-application throughput in {e original input load units} —
      completions of the final stage, rescaled by the compounded
      upstream expansion *)
  objective_value : float;
  iterations : int;
  placement : (int * int * int * float) list;
  (** non-zero [(app, stage, cluster, rate)] entries, stage numbered
      from 1 *)
}

val solve :
  ?objective:Lp_relax.objective ->
  ?max_iterations:int ->
  Dls_platform.Platform.t ->
  app list ->
  (solution, string) result
(** Relaxation optimum for the pipelined model (default [Maxmin] over
    applications with positive payoff).
    @raise Invalid_argument on an empty stage list, non-positive work,
    negative expansion, a bad source index, or a negative payoff. *)
