module B = Dls_num.Bigint
module Q = Dls_num.Rat
module P = Dls_platform.Platform

type interval = {
  cluster : int;
  app : int;
  start_time : Q.t;
  finish_time : Q.t;
  amount : Q.t;
}

type t = {
  period : Q.t;
  periods_used : int;
  intervals : interval list;
  makespan : Q.t;
}

let build problem schedule ~workloads =
  let kk = Problem.num_clusters problem in
  if Array.length workloads <> kk then Error "one workload per cluster required"
  else begin
    let period = Q.of_bigint schedule.Schedule.period in
    (* Per-period work of each application, and per-(app, cluster) chunk. *)
    let per_period = Array.make kk Q.zero in
    let chunk = Array.make_matrix kk kk Q.zero in
    List.iter
      (fun (c : Schedule.compute_entry) ->
        let q = Q.of_bigint c.Schedule.amount in
        per_period.(c.Schedule.app) <- Q.add per_period.(c.Schedule.app) q;
        chunk.(c.Schedule.app).(c.Schedule.cluster) <-
          Q.add chunk.(c.Schedule.app).(c.Schedule.cluster) q)
      schedule.Schedule.computes;
    let error = ref None in
    (* Shipping periods per application and last-period scale factor. *)
    let n_periods = Array.make kk 0 in
    let last_scale = Array.make kk Q.one in
    Array.iteri
      (fun k w ->
        if Q.sign w < 0 then error := Some "negative workload"
        else if Q.sign w > 0 then begin
          if Q.is_zero per_period.(k) then
            error :=
              Some
                (Printf.sprintf
                   "application %d has positive load but zero steady-state throughput"
                   k)
          else begin
            let n = Q.ceil (Q.div w per_period.(k)) in
            match B.to_int n with
            | Some n when n >= 1 ->
              n_periods.(k) <- n;
              let full = Q.mul (Q.of_int (n - 1)) per_period.(k) in
              last_scale.(k) <- Q.div (Q.sub w full) per_period.(k)
            | _ -> error := Some "workload needs an impractical number of periods"
          end
        end)
      workloads;
    match !error with
    | Some msg -> Error msg
    | None ->
      let max_ship = Array.fold_left Stdlib.max 0 n_periods in
      (* scale of app k's chunks shipped in period p *)
      let scale k p =
        if p < 0 || p >= n_periods.(k) then Q.zero
        else if p = n_periods.(k) - 1 then last_scale.(k)
        else Q.one
      in
      let intervals = ref [] in
      let makespan = ref Q.zero in
      for l = 0 to kk - 1 do
        let speed = P.speed (Problem.platform problem) l in
        (* Compute periods run from 0 (local chunks of shipping period
           0) to max_ship (remote chunks shipped in the last period). *)
        for q = 0 to max_ship do
          let jobs = ref [] in
          for k = 0 to kk - 1 do
            let s =
              if k = l then scale k q  (* local: same period *)
              else scale k (q - 1)  (* remote: received last period *)
            in
            if Q.sign s > 0 && Q.sign chunk.(k).(l) > 0 then
              jobs := (k, Q.mul s chunk.(k).(l)) :: !jobs
          done;
          let jobs = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) !jobs in
          if jobs <> [] then begin
            if speed <= 0.0 then
              (* Unreachable for schedules built from valid allocations
                 (Eq. 1 forbids work on speed-0 clusters). *)
              failwith "Timeline.build: work scheduled on a speed-0 cluster"
            else begin
              (* The float speed lifted exactly: durations then sum to
                 at most one period (Eq. 1), so period slots never
                 overlap. *)
              let rate = Q.of_float speed in
              let clock = ref (Q.mul (Q.of_int q) period) in
              List.iter
                (fun (k, amount) ->
                  let duration = Q.div amount rate in
                  let finish = Q.add !clock duration in
                  intervals :=
                    { cluster = l; app = k; start_time = !clock;
                      finish_time = finish; amount }
                    :: !intervals;
                  if Q.compare finish !makespan > 0 then makespan := finish;
                  clock := finish)
                jobs
            end
          end
        done
      done;
      let sorted =
        List.sort
          (fun a b -> Stdlib.compare (a.cluster, Q.to_float a.start_time)
              (b.cluster, Q.to_float b.start_time))
          !intervals
      in
      Ok { period; periods_used = max_ship; intervals = sorted; makespan = !makespan }
  end

let validate t =
  let exception Bad of string in
  try
    let by_cluster = Hashtbl.create 16 in
    List.iter
      (fun iv ->
        if Q.sign iv.amount <= 0 then raise (Bad "non-positive interval amount");
        if Q.compare iv.start_time iv.finish_time >= 0 then
          raise (Bad "empty or reversed interval");
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt by_cluster iv.cluster)
        in
        Hashtbl.replace by_cluster iv.cluster (iv :: existing))
      t.intervals;
    Hashtbl.iter
      (fun _ ivs ->
        let sorted =
          List.sort (fun a b -> Q.compare a.start_time b.start_time) ivs
        in
        let rec check = function
          | a :: (b :: _ as rest) ->
            if Q.compare a.finish_time b.start_time > 0 then
              raise (Bad "overlapping intervals on one cluster");
            check rest
          | _ -> ()
        in
        check sorted)
      by_cluster;
    Ok ()
  with
  | Bad msg -> Error msg

let total_computed t k =
  List.fold_left
    (fun acc iv -> if iv.app = k then Q.add acc iv.amount else acc)
    Q.zero t.intervals

let pp fmt t =
  Format.fprintf fmt "@[<v>timeline: %d shipping periods of %a, makespan %a@,"
    t.periods_used Q.pp t.period Q.pp t.makespan;
  List.iter
    (fun iv ->
      Format.fprintf fmt "  C%d [%g .. %g] computes %g units of A%d@," iv.cluster
        (Q.to_float iv.start_time) (Q.to_float iv.finish_time)
        (Q.to_float iv.amount) iv.app)
    t.intervals;
  Format.fprintf fmt "@]"
