(** Graphviz rendering of steady-state allocations.

    A directed graph over clusters: node labels carry each cluster's
    payoff and local work rate [alpha_{k,k}]; an edge from [k] to [l]
    carries the shipped rate [alpha_{k,l}] and the connection count
    [beta_{k,l}], with its pen width scaled by the rate — a quick way to
    see where the paper's heuristics actually send the load. *)

val allocation_dot : Problem.t -> Allocation.t -> string

val save : path:string -> Problem.t -> Allocation.t -> unit
(** @raise Sys_error on an unwritable path. *)
