module P = Dls_platform.Platform

type comparison = {
  idealized : float;
  realistic : float;
  repaired : float;
}

(* The connection-free model is exactly the paper's relaxation on a
   platform whose connection caps can never bind. *)
let unlimited_connections platform =
  let backbones =
    Array.init (P.num_backbones platform) (fun i ->
        { (P.backbone platform i) with P.max_connect = max_int / 2 })
  in
  P.make ~clusters:(Array.init (P.num_clusters platform) (P.cluster platform))
    ~topology:(P.topology platform) ~backbones

let solve ?objective problem =
  let idealized_platform = unlimited_connections (Problem.platform problem) in
  let payoffs =
    Array.init (Problem.num_clusters problem) (Problem.payoff problem)
  in
  let idealized_problem = Problem.make idealized_platform ~payoffs in
  match Lp_relax.solve ?objective idealized_problem with
  | Lp_relax.Solution sol -> Ok sol
  | Lp_relax.Failed msg -> Error msg

let repair problem (sol : float Lp_relax.solution) =
  let p = Problem.platform problem in
  let kk = Problem.num_clusters problem in
  (* Step 1: integer connections by ceiling the fractional counts. *)
  let beta_hat = Array.make_matrix kk kk 0 in
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if k <> l && sol.Lp_relax.beta.(k).(l) > 1e-9 then
        beta_hat.(k).(l) <-
          int_of_float (Float.ceil (sol.Lp_relax.beta.(k).(l) -. 1e-9))
    done
  done;
  (* Step 2: one global scale bringing every connection cap back under
     its limit. *)
  let mu = ref 1.0 in
  for link = 0 to P.num_backbones p - 1 do
    let used =
      List.fold_left
        (fun acc (k, l) -> acc + beta_hat.(k).(l))
        0 (P.routes_through p link)
    in
    if used > 0 then
      mu :=
        Float.min !mu
          (float_of_int (P.backbone p link).P.max_connect /. float_of_int used)
  done;
  let mu = Float.max 0.0 !mu in
  (* Step 3: scaled-down allocation obeying every realistic constraint. *)
  let alloc = Allocation.zero kk in
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if l = k then alloc.Allocation.alpha.(k).(k) <- sol.Lp_relax.alpha.(k).(k)
      else begin
        let b = int_of_float (Float.floor (float_of_int beta_hat.(k).(l) *. mu)) in
        alloc.Allocation.beta.(k).(l) <- b;
        let bw_cap =
          match P.route_bottleneck p k l with
          | None -> 0.0
          | Some bw when bw = infinity -> infinity
          | Some bw -> float_of_int b *. bw
        in
        alloc.Allocation.alpha.(k).(l) <-
          Float.min (sol.Lp_relax.alpha.(k).(l) *. mu) bw_cap
      end
    done
  done;
  alloc

let compare ?objective problem =
  match solve ?objective problem with
  | Error msg -> Error msg
  | Ok idealized_sol ->
    (match Lp_relax.solve ?objective problem with
     | Lp_relax.Failed msg -> Error msg
     | Lp_relax.Solution realistic_sol ->
       let repaired_alloc = repair problem idealized_sol in
       let value =
         match objective with
         | Some Lp_relax.Sum -> Allocation.sum_objective problem repaired_alloc
         | Some Lp_relax.Maxmin | None ->
           Allocation.maxmin_objective problem repaired_alloc
       in
       Ok
         { idealized = idealized_sol.Lp_relax.objective_value;
           realistic = realistic_sol.Lp_relax.objective_value;
           repaired = value })
