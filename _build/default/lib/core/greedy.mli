(** The greedy heuristic G (Section 5.1 of the paper).

    At each step G selects the application with the smallest relative
    share [alpha_k * pi_k] so far (ties to the highest payoff), compares
    the benefit of computing locally against opening one connection to
    each reachable cluster, allocates the most profitable amount, and
    updates the residual capacities.  The local-allocation amount is
    deliberately capped at the largest amount any {e other} application
    could have run there, to avoid starving remote applications of the
    cluster early on.

    Two deviations from the paper's pseudo-code, both required for
    termination and documented in DESIGN.md: applications with payoff 0
    are never selected (they have no work to place), and when the
    local-cap formula yields 0 while the cluster still has speed left —
    i.e. no other application can reach the cluster at all — the full
    remaining speed is allocated. *)

val solve : Problem.t -> Allocation.t
(** Run G from the full platform capacities and an empty allocation. *)

val refine : Problem.t -> Residual.t -> Allocation.t -> Allocation.t
(** [refine problem residual start] continues G from a partial
    allocation and its residual capacities (the LPRG composition,
    Section 5.2.2).  [residual] is consumed (mutated); [start] is not
    modified — a refined copy is returned. *)
