(** Fairness metrics over per-application weighted throughputs.

    MAXMIN optimizes the worst-off application; these metrics summarize
    how {e evenly} an allocation actually treats the whole population —
    useful when comparing G (whose fairness is step-granular) with LPRR
    (near max-min fair) beyond the single min value the paper plots.
    All metrics apply to the payoff-weighted throughputs
    [pi_k * alpha_k] of active applications. *)

val weighted_throughputs : Problem.t -> Allocation.t -> float array
(** [pi_k * alpha_k] for each active application, in cluster order. *)

val jain_index : Problem.t -> Allocation.t -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)] in [1/n, 1]: 1
    when all weighted throughputs are equal, [1/n] when one application
    holds everything.  1 by convention when no application is active or
    nothing is allocated. *)

val min_over_max : Problem.t -> Allocation.t -> float
(** Worst-to-best ratio in [0, 1]; 1 when perfectly even. *)
