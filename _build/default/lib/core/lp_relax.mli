(** Rational relaxation of the mixed LP (7a)–(7g), for both objectives.

    In the relaxation, [beta_{k,l}] has no objective cost and appears
    only in the connection-count rows (7d) and the bandwidth rows (7e),
    so an optimal solution always sets
    [beta_{k,l} = alpha_{k,l} / g_{k,l}], where
    [g_{k,l} = min bw over the route].  We therefore eliminate the betas
    and charge [alpha_{k,l} / g_{k,l}] connection slots on every
    backbone link of the route — an exactly equivalent LP with half the
    columns (Section 2.1 of DESIGN.md).  The relaxation's optimum is the
    upper bound ("LP") the paper compares every heuristic against.

    [fixed] pins selected remote pairs to integer connection counts: the
    pair's bandwidth row becomes [alpha_{k,l} <= v * g_{k,l}] and its
    slot charge on each route link becomes the constant [v].  LPRR uses
    this to implement its iterated randomized rounding. *)

type objective = Sum | Maxmin

type 'num solution = {
  alpha : 'num array array;
  (** K x K work matrix; zero where no variable exists. *)
  beta : 'num array array;
  (** Fractional connection counts [alpha/g] (or the pinned integers);
      zero on local and co-located pairs, which cross no backbone. *)
  objective_value : 'num;
  iterations : int;  (** simplex pivots *)
}

type 'num outcome =
  | Solution of 'num solution
  | Failed of string  (** infeasible pinning or pivot-budget exhaustion *)

val solve :
  ?engine:[ `Sparse | `Dense ] ->
  ?objective:objective ->
  ?fixed:((int * int) * int) list ->
  ?max_iterations:int ->
  Problem.t ->
  float outcome
(** Float path (default objective [Maxmin], like the paper's headline
    fairness criterion).  [engine] selects the LP kernel: the sparse
    revised simplex (default) or the dense tableau — both give the same
    optimum; the option exists for cross-checking and benchmarks. *)

val solve_exact :
  ?objective:objective ->
  ?fixed:((int * int) * int) list ->
  ?max_iterations:int ->
  Problem.t ->
  Dls_num.Rat.t outcome
(** Exact-rational path: same construction with platform parameters
    injected exactly (every float is a rational).  Slower; intended for
    tests, small instances, and schedule reconstruction. *)

val remote_pairs : Problem.t -> (int * int) list
(** Ordered pairs (k, l), k active, k <> l, joined by a route that
    crosses at least one backbone link — exactly the pairs whose beta
    matters, i.e. LPRR's rounding domain. *)
