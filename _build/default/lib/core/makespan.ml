module B = Dls_num.Bigint
module Q = Dls_num.Rat

type estimate = {
  periods : B.t;
  makespan : Q.t;
  lower_bound : Q.t;
  efficiency : float;
}

let ceil_div_q a b =
  (* ceil of the positive rational a/b as an integer *)
  Q.ceil (Q.div a b)

let periodic schedule ~workloads =
  let period = Q.of_bigint schedule.Schedule.period in
  let k = Array.length workloads in
  let throughput = Array.init k (Schedule.app_throughput schedule) in
  let error = ref None in
  let periods = ref B.zero in
  let lower = ref Q.zero in
  Array.iteri
    (fun i w ->
      if Q.sign w < 0 then error := Some "negative workload"
      else if Q.sign w > 0 then begin
        if Q.is_zero throughput.(i) then
          error :=
            Some
              (Printf.sprintf
                 "application %d has positive load but zero steady-state throughput" i)
        else begin
          (* Work per period for app i is throughput * T_p. *)
          let per_period = Q.mul throughput.(i) period in
          periods := B.max !periods (ceil_div_q w per_period);
          lower := Q.max !lower (Q.div w throughput.(i))
        end
      end)
    workloads;
  match !error with
  | Some msg -> Error msg
  | None ->
    let makespan = Q.mul (Q.of_bigint (B.succ !periods)) period in
    let efficiency =
      if Q.is_zero makespan then 1.0 else Q.to_float (Q.div !lower makespan)
    in
    Ok { periods = !periods; makespan; lower_bound = !lower; efficiency }

let sequential_baseline problem ~workloads =
  if Array.length workloads <> Problem.num_clusters problem then
    Error "one workload per cluster required"
  else begin
    let total = ref Q.zero in
    let failed = ref None in
    Array.iteri
      (fun k w ->
        if !failed = None && Q.sign w > 0 then begin
          (* Solo problem: only application k is active. *)
          let payoffs =
            Array.init (Problem.num_clusters problem) (fun i ->
                if i = k then Stdlib.max (Problem.payoff problem k) 1.0 else 0.0)
          in
          let solo = Problem.make (Problem.platform problem) ~payoffs in
          match Lp_relax.solve ~objective:Lp_relax.Maxmin solo with
          | Lp_relax.Failed msg -> failed := Some msg
          | Lp_relax.Solution sol ->
            let rate = Array.fold_left ( +. ) 0.0 sol.Lp_relax.alpha.(k) in
            if rate <= 0.0 then
              failed :=
                Some (Printf.sprintf "application %d cannot run at all" k)
            else begin
              let exact_rate =
                let r = Q.approx_of_float_below rate ~max_den:1_000_000 in
                if Q.is_zero r then Q.of_float rate else r
              in
              total := Q.add !total (Q.div w exact_rate)
            end
        end)
      workloads;
    match !failed with Some msg -> Error msg | None -> Ok !total
  end

let asymptotic_efficiency schedule ~workloads ~scale =
  if scale < 1 then invalid_arg "Makespan.asymptotic_efficiency: scale < 1";
  let scaled = Array.map (fun w -> Q.mul_int w scale) workloads in
  match periodic schedule ~workloads:scaled with
  | Ok e -> e.efficiency
  | Error _ -> 0.0
