module G = Dls_graph.Graph
module P = Dls_platform.Platform

let build graph =
  let n = G.num_nodes graph in
  if n = 0 then invalid_arg "Reduction.build: empty graph";
  let m = G.num_edges graph in
  (* Router layout: 0..n are cluster routers (cluster c at router c);
     routers n+1+2k and n+2+2k are Q^a_k and Q^b_k for edge k. *)
  let qa k = n + 1 + (2 * k) and qb k = n + 2 + (2 * k) in
  let num_routers = n + 1 + (2 * m) in
  (* Backbone links: first the m common links (edge k -> link id k),
     then the per-vertex chain links in vertex order. *)
  let links = ref [] in
  let next_id = ref 0 in
  let add_link u v =
    let id = !next_id in
    incr next_id;
    links := (u, v) :: !links;
    id
  in
  for k = 0 to m - 1 do
    ignore (add_link (qa k) (qb k))
  done;
  let route_of_vertex = Array.make n [] in
  for v = 0 to n - 1 do
    let incident =
      List.sort_uniq Stdlib.compare (List.map snd (G.neighbors graph v))
    in
    let position = ref 0 (* C^0's router *) in
    let rev_route = ref [] in
    List.iter
      (fun k ->
        let hop = add_link !position (qa k) in
        rev_route := k :: hop :: !rev_route;  (* chain link, then lcommon_k *)
        position := qb k)
      incident;
    let final = add_link !position (v + 1) in
    rev_route := final :: !rev_route;
    route_of_vertex.(v) <- List.rev !rev_route
  done;
  let topology =
    G.create ~n:num_routers ~edges:(List.rev !links)
  in
  let backbones =
    Array.make (G.num_edges topology) { P.bw = 1.0; max_connect = 1 }
  in
  let clusters =
    Array.init (n + 1) (fun c ->
        if c = 0 then { P.speed = 0.0; local_bw = float_of_int n; router = 0 }
        else { P.speed = 1.0; local_bw = 1.0; router = c })
  in
  let overrides =
    List.init n (fun v -> (0, v + 1, route_of_vertex.(v)))
  in
  let platform = P.make_with_routes ~clusters ~topology ~backbones ~routes:overrides in
  let payoffs = Array.init (n + 1) (fun c -> if c = 0 then 1.0 else 0.0) in
  Problem.make platform ~payoffs

let allocation_of_independent_set problem vertices =
  let kk = Problem.num_clusters problem in
  let alloc = Allocation.zero kk in
  List.iter
    (fun v ->
      if v < 0 || v + 1 >= kk then
        invalid_arg "Reduction.allocation_of_independent_set: bad vertex";
      alloc.Allocation.alpha.(0).(v + 1) <- 1.0;
      alloc.Allocation.beta.(0).(v + 1) <- 1)
    vertices;
  alloc

let independent_set_of_allocation ?(eps = 1e-6) alloc =
  let kk = Array.length alloc.Allocation.alpha in
  List.filter_map
    (fun c ->
      if c >= 1 && alloc.Allocation.alpha.(0).(c) > eps then Some (c - 1) else None)
    (List.init kk Fun.id)
