(** Explicit execution timeline (Gantt) for finite workloads.

    Section 3.2 describes the periodic regime in compact form; this
    module unrolls it into concrete per-cluster busy intervals for given
    total loads, following the paper's phase structure: during period
    [p] every cluster computes the chunks received in period [p-1]
    (local chunks are same-period), so the first period only
    communicates remote data and one trailing period only computes —
    the "+1 period" of {!Makespan}.  The final period of each
    application is scaled down to its remaining load, so the timeline
    ends exactly when the work does.

    All times are exact rationals; computes within a period are
    serialized per cluster (valid since Equation 1 bounds each period's
    total compute), which yields a drawable, overlap-free Gantt. *)

type interval = {
  cluster : int;
  app : int;
  start_time : Dls_num.Rat.t;
  finish_time : Dls_num.Rat.t;
  amount : Dls_num.Rat.t;  (** load units computed in this interval *)
}

type t = {
  period : Dls_num.Rat.t;
  periods_used : int;  (** steady periods, excluding the compute-only tail *)
  intervals : interval list;  (** sorted by cluster, then start time *)
  makespan : Dls_num.Rat.t;  (** finish of the last interval *)
}

val build :
  Problem.t ->
  Schedule.t ->
  workloads:Dls_num.Rat.t array ->
  (t, string) result
(** Errors mirror {!Makespan.periodic} (starved application, negative
    workload). *)

val validate : t -> (unit, string) result
(** Structural re-check: per-cluster intervals are disjoint and ordered,
    amounts are positive, and every interval fits its period slot. *)

val total_computed : t -> int -> Dls_num.Rat.t
(** Work of one application summed over all intervals — equals its
    workload by construction (tested). *)

val pp : Format.formatter -> t -> unit
