(** Mutable residual capacities of a platform.

    The greedy heuristic (Section 5.1 of the paper) repeatedly allocates
    work and "decrements" speeds, local link capacities and backbone
    connection counts; LPRG starts greedy refinement from the residual
    left by the rounded LP solution.  This module owns that bookkeeping
    so the platform itself stays immutable. *)

type t

val full : Dls_platform.Platform.t -> t
(** Fresh residual equal to the full platform capacities. *)

val of_allocation : Dls_platform.Platform.t -> Allocation.t -> t
(** Capacities left after deducting an allocation's work, traffic, and
    connections (clamped at zero against float dust). *)

val speed : t -> int -> float
val local_bw : t -> int -> float
val connections : t -> int -> int

val route_usable : Dls_platform.Platform.t -> t -> int -> int -> bool
(** Whether one more connection can be opened from [k] to [l]: a route
    exists and every backbone link on it has a connection slot left. *)

val bottleneck : Dls_platform.Platform.t -> t -> int -> int -> float
(** Residual [g_{k,l}]: the per-connection bandwidth of the route if it
    is usable ({!route_usable}), [infinity] for co-located pairs, [0.]
    otherwise.  Unlike local links, backbone links grant each connection
    its full [bw], so this value does not decrease with use — only the
    connection slots do. *)

val consume_local : t -> int -> float -> unit
(** Deduct locally executed work from a cluster's speed. *)

val consume_remote : Dls_platform.Platform.t -> t -> src:int -> dst:int -> float -> unit
(** Deduct one remote allocation: [amount] of compute at [dst], [amount]
    of local-link traffic at both ends, and one connection slot on every
    backbone link of the route.
    @raise Invalid_argument if the route is missing or unusable. *)

val pp : Format.formatter -> t -> unit
