module P = Dls_platform.Platform
module M = Dls_lp.Model.Float

type stage = { work : float; expansion : float }

type app = { source : int; payoff : float; stages : stage list }

type solution = {
  rates : float array;
  objective_value : float;
  iterations : int;
  placement : (int * int * int * float) list;
}

let check_apps platform apps =
  let kk = P.num_clusters platform in
  List.iteri
    (fun a app ->
      if app.source < 0 || app.source >= kk then
        invalid_arg (Printf.sprintf "Pipeline.solve: app %d has a bad source" a);
      if app.payoff < 0.0 || not (Float.is_finite app.payoff) then
        invalid_arg (Printf.sprintf "Pipeline.solve: app %d has a bad payoff" a);
      if app.stages = [] then
        invalid_arg (Printf.sprintf "Pipeline.solve: app %d has no stages" a);
      let p = List.length app.stages in
      List.iteri
        (fun i s ->
          if s.work <= 0.0 then
            invalid_arg (Printf.sprintf "Pipeline.solve: app %d has non-positive work" a);
          if s.expansion < 0.0 || (i < p - 1 && s.expansion = 0.0) then
            invalid_arg
              (Printf.sprintf
                 "Pipeline.solve: app %d: expansion must be positive before the last stage"
                 a))
        app.stages)
    apps

(* Variables are inter-stage flows f_{a,s,c,c'}: data of stage-s output
   of application a moved from cluster c to cluster c' (s = 0 is the
   source data, available only at the home cluster).  Everything else —
   per-stage input rates, application throughput — is a linear
   combination of flows, so the whole program is <=-rows with
   non-negative right-hand sides and runs on the sparse engine. *)
let solve ?(objective = Lp_relax.Maxmin) ?max_iterations platform apps =
  check_apps platform apps;
  let kk = P.num_clusters platform in
  let apps_a = Array.of_list apps in
  let na = Array.length apps_a in
  let active = List.filter (fun a -> apps_a.(a).payoff > 0.0) (List.init na Fun.id) in
  if active = [] then
    Ok { rates = Array.make na 0.0; objective_value = 0.0; iterations = 0;
         placement = [] }
  else begin
    let m = M.create () in
    let reachable c c' = c = c' || P.route platform c c' <> None in
    let bottleneck = Array.make_matrix kk kk infinity in
    for c = 0 to kk - 1 do
      for c' = 0 to kk - 1 do
        if c <> c' then begin
          match P.route_bottleneck platform c c' with
          | Some bw -> bottleneck.(c).(c') <- bw
          | None -> ()
        end
      done
    done;
    (* flows.(a).(s) : (src cluster, dst cluster, var) list *)
    let flows =
      Array.map
        (fun app ->
          let p = List.length app.stages in
          Array.init p (fun s ->
              let sources =
                if s = 0 then [ app.source ] else List.init kk Fun.id
              in
              List.concat_map
                (fun c ->
                  List.filter_map
                    (fun c' ->
                      if reachable c c' then
                        Some (c, c', M.add_var ~name:(Printf.sprintf "f_%d_%d_%d" s c c') m)
                      else None)
                    (List.init kk Fun.id))
                sources))
        apps_a
    in
    (* Stage-s input rate at cluster c, as linear terms over flows. *)
    let input_terms a s c =
      List.filter_map
        (fun (_, dst, v) -> if dst = c then Some (v, 1.0) else None)
        flows.(a).(s - 1)
    in
    let stage a s = List.nth apps_a.(a).stages (s - 1) in
    (* Flow conservation (relaxed to <=): stage-s output shipped from c
       cannot exceed expansion * stage-s input at c, for 1 <= s < p. *)
    Array.iteri
      (fun a app ->
        let p = List.length app.stages in
        for s = 1 to p - 1 do
          let d = (stage a s).expansion in
          for c = 0 to kk - 1 do
            let out =
              List.filter_map
                (fun (src, _, v) -> if src = c then Some (v, 1.0) else None)
                flows.(a).(s)
            in
            if out <> [] then begin
              let inputs = List.map (fun (v, _) -> (v, -.d)) (input_terms a s c) in
              M.add_le m (out @ inputs) 0.0
            end
          done
        done)
      apps_a;
    (* Compute capacity per cluster. *)
    for c = 0 to kk - 1 do
      let terms = ref [] in
      Array.iteri
        (fun a app ->
          let p = List.length app.stages in
          for s = 1 to p do
            let w = (stage a s).work in
            List.iter
              (fun (v, coef) -> terms := (v, w *. coef) :: !terms)
              (input_terms a s c)
          done;
          ignore app)
        apps_a;
      if !terms <> [] then M.add_le m !terms (P.speed platform c)
    done;
    (* Local link capacity per cluster: all network flows touching it. *)
    for c = 0 to kk - 1 do
      let terms = ref [] in
      Array.iter
        (fun per_stage ->
          Array.iter
            (List.iter (fun (src, dst, v) ->
                 if src <> dst && (src = c || dst = c) then
                   terms := (v, 1.0) :: !terms))
            per_stage)
        flows;
      if !terms <> [] then M.add_le m !terms (P.local_bw platform c)
    done;
    (* Backbone connection slots, with the beta-eliminated 1/g charge. *)
    for link = 0 to P.num_backbones platform - 1 do
      let crossing = P.routes_through platform link in
      let terms = ref [] in
      List.iter
        (fun (c, c') ->
          let g = bottleneck.(c).(c') in
          Array.iter
            (fun per_stage ->
              Array.iter
                (List.iter (fun (src, dst, v) ->
                     if src = c && dst = c' then terms := (v, 1.0 /. g) :: !terms))
                per_stage)
            flows)
        crossing;
      if !terms <> [] then
        M.add_le m !terms (float_of_int (P.backbone platform link).P.max_connect)
    done;
    (* Application throughput in original load units: completed work is
       the last stage's input, divided by the compounded expansion of
       the upstream stages (counting completions, not shipments, so
       data dropped mid-pipeline earns nothing). *)
    let compound_expansion a =
      let p = List.length apps_a.(a).stages in
      let rec go s acc =
        if s >= p then acc else go (s + 1) (acc *. (stage a s).expansion)
      in
      go 1 1.0
    in
    let rate_terms a =
      let p = List.length apps_a.(a).stages in
      let scale = 1.0 /. compound_expansion a in
      List.concat_map
        (fun c -> List.map (fun (v, coef) -> (v, coef *. scale)) (input_terms a p c))
        (List.init kk Fun.id)
    in
    (match objective with
     | Lp_relax.Sum ->
       let terms =
         List.concat_map
           (fun a ->
             List.map (fun (v, coef) -> (v, apps_a.(a).payoff *. coef)) (rate_terms a))
           active
       in
       M.set_objective m terms
     | Lp_relax.Maxmin ->
       let t = M.add_var ~name:"t" m in
       List.iter
         (fun a ->
           let row =
             (t, 1.0)
             :: List.map
                  (fun (v, coef) -> (v, -.(apps_a.(a).payoff *. coef)))
                  (rate_terms a)
           in
           M.add_le m row 0.0)
         active;
       M.set_objective m [ (t, 1.0) ]);
    let result = M.solve_auto ?max_iterations m in
    match result.M.status with
    | M.Solver.Optimal ->
      let value_of terms =
        List.fold_left (fun acc (v, coef) -> acc +. (coef *. result.M.value v)) 0.0 terms
      in
      let rates = Array.init na (fun a -> value_of (rate_terms a)) in
      let placement = ref [] in
      for a = na - 1 downto 0 do
        let p = List.length apps_a.(a).stages in
        for s = p downto 1 do
          for c = kk - 1 downto 0 do
            let y = value_of (input_terms a s c) in
            if y > 1e-9 then placement := (a, s, c, y) :: !placement
          done
        done
      done;
      Ok
        { rates;
          objective_value = result.M.objective;
          iterations = result.M.iterations;
          placement = !placement }
    | M.Solver.Infeasible -> Error "pipeline LP infeasible"
    | M.Solver.Unbounded -> Error "pipeline LP unbounded (malformed input)"
    | M.Solver.Iteration_limit -> Error "pipeline LP iteration budget exhausted"
  end
