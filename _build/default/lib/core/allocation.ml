module P = Dls_platform.Platform

type t = { alpha : float array array; beta : int array array }

let zero k = { alpha = Array.make_matrix k k 0.0; beta = Array.make_matrix k k 0 }

let copy t =
  { alpha = Array.map Array.copy t.alpha; beta = Array.map Array.copy t.beta }

let app_throughput t k = Array.fold_left ( +. ) 0.0 t.alpha.(k)

let sum_objective problem t =
  let acc = ref 0.0 in
  for k = 0 to Problem.num_clusters problem - 1 do
    acc := !acc +. (Problem.payoff problem k *. app_throughput t k)
  done;
  !acc

let maxmin_objective problem t =
  match Problem.active problem with
  | [] -> 0.0
  | active ->
    List.fold_left
      (fun acc k ->
        Float.min acc (Problem.payoff problem k *. app_throughput t k))
      infinity active

let objective obj problem t =
  match obj with
  | `Sum -> sum_objective problem t
  | `Maxmin -> maxmin_objective problem t

type violation =
  | Negative_alpha of int * int
  | Negative_beta of int * int
  | Cpu_exceeded of int
  | Local_link_exceeded of int
  | Connections_exceeded of int
  | Bandwidth_exceeded of int * int
  | No_route of int * int
  | Inactive_sender of int

let pp_violation fmt = function
  | Negative_alpha (k, l) -> Format.fprintf fmt "alpha(%d,%d) < 0" k l
  | Negative_beta (k, l) -> Format.fprintf fmt "beta(%d,%d) < 0" k l
  | Cpu_exceeded k -> Format.fprintf fmt "CPU capacity exceeded at cluster %d (Eq. 1)" k
  | Local_link_exceeded k ->
    Format.fprintf fmt "local link capacity exceeded at cluster %d (Eq. 2)" k
  | Connections_exceeded i ->
    Format.fprintf fmt "connection cap exceeded on backbone %d (Eq. 3)" i
  | Bandwidth_exceeded (k, l) ->
    Format.fprintf fmt "route bandwidth exceeded from %d to %d (Eq. 4)" k l
  | No_route (k, l) ->
    Format.fprintf fmt "work shipped from %d to %d but no route exists" k l
  | Inactive_sender k ->
    Format.fprintf fmt "cluster %d ships work but its payoff is 0" k

let check ?(eps = 1e-6) problem t =
  let p = Problem.platform problem in
  let kk = P.num_clusters p in
  if Array.length t.alpha <> kk || Array.length t.beta <> kk then
    invalid_arg "Allocation.check: matrix size differs from cluster count";
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let tol rhs = eps *. Float.max 1.0 (Float.abs rhs) in
  (* Signs, activity, and route existence. *)
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if t.alpha.(k).(l) < -.eps then add (Negative_alpha (k, l));
      if t.beta.(k).(l) < 0 then add (Negative_beta (k, l));
      if t.alpha.(k).(l) > eps then begin
        if not (Problem.is_active problem k) then add (Inactive_sender k);
        if k <> l && P.route p k l = None then add (No_route (k, l))
      end
    done
  done;
  (* Equation 1: per-cluster compute capacity. *)
  for l = 0 to kk - 1 do
    let load = ref 0.0 in
    for k = 0 to kk - 1 do
      load := !load +. t.alpha.(k).(l)
    done;
    let s = P.speed p l in
    if !load > s +. tol s then add (Cpu_exceeded l)
  done;
  (* Equation 2: local serial link, outgoing plus incoming remote work. *)
  for k = 0 to kk - 1 do
    let traffic = ref 0.0 in
    for l = 0 to kk - 1 do
      if l <> k then traffic := !traffic +. t.alpha.(k).(l) +. t.alpha.(l).(k)
    done;
    let g = P.local_bw p k in
    if !traffic > g +. tol g then add (Local_link_exceeded k)
  done;
  (* Equation 3: per-backbone connection cap. *)
  for link = 0 to P.num_backbones p - 1 do
    let used =
      List.fold_left
        (fun acc (k, l) -> acc + t.beta.(k).(l))
        0 (P.routes_through p link)
    in
    if used > (P.backbone p link).P.max_connect then add (Connections_exceeded link)
  done;
  (* Equation 4: per-route bandwidth alpha <= beta * min bw. *)
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if k <> l && t.alpha.(k).(l) > eps then begin
        match P.route_bottleneck p k l with
        | None -> ()  (* reported as No_route above *)
        | Some bw when bw = infinity -> ()  (* co-located: no backbone crossed *)
        | Some bw ->
          let cap = float_of_int t.beta.(k).(l) *. bw in
          if t.alpha.(k).(l) > cap +. tol cap then add (Bandwidth_exceeded (k, l))
      end
    done
  done;
  List.rev !violations

let is_feasible ?eps problem t = check ?eps problem t = []

let pp fmt t =
  Format.fprintf fmt "@[<v>allocation:@,";
  Array.iteri
    (fun k row ->
      Array.iteri
        (fun l a ->
          if a > 0.0 || t.beta.(k).(l) > 0 then
            Format.fprintf fmt "  alpha(%d,%d)=%g beta=%d@," k l a t.beta.(k).(l))
        row)
    t.alpha;
  Format.fprintf fmt "@]"
