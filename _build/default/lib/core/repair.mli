(** Degradation-aware schedule repair.

    When a platform event (backbone failure, bandwidth degradation,
    connection-cap reduction, cluster throttle or crash) invalidates a
    running steady-state allocation, the schedule must be repaired
    against the {e residual} platform — the degraded capacities, e.g.
    from {!Dls_flowsim.Faults.degraded_platform}.  This module climbs a
    retry ladder of increasing cost until it finds a feasible operating
    point:

    + {b Rescale} — local surgery on the broken allocation: entries
      through dead routes or crashed clusters are zeroed, connection
      counts are re-pinned under each link's surviving [max_connect]
      (floored proportional scaling, so per-link sums stay under the
      cap), bandwidth rows are re-capped against the degraded
      per-connection bandwidth, and finally every [alpha] is multiplied
      by the single largest factor that fits the CPU and local-link
      rows — the λ-scaling trick the adaptivity experiment uses.  The
      result is feasible by construction; milliseconds, but it can only
      shrink work, never re-route it.
    + {b Refine} — continue the greedy heuristic from the rescaled
      allocation and its residual capacities ({!Residual.of_allocation}
      + {!Greedy.refine}), reclaiming capacity the rescale freed — the
      LPRG composition applied to repair.
    + {b Resolve} — discard the old allocation and re-run a full
      heuristic ({!Heuristics.run}, default LPRG, falling back to G if
      the LP fails) on the degraded problem.

    The first stage whose output is feasible {e and} achieves a positive
    objective wins; if every stage yields objective 0 (e.g. the faults
    disconnected everything) the best feasible output is returned so the
    caller still holds a valid — if empty — operating point.  Every
    stage tried is reported in {!outcome.attempts} with its wall-clock
    cost and whether it met its (advisory, post-hoc) time budget. *)

type stage = Rescale | Refine | Resolve

val stage_name : stage -> string
(** ["rescale"], ["refine"], ["resolve"]. *)

type attempt = {
  stage : stage;
  seconds : float;  (** CPU seconds spent in the stage *)
  within_budget : bool;
  (** whether [seconds] met the stage's budget; budgets are advisory —
      a stage is never aborted mid-flight, the flag records the overrun
      for the caller (and the bench series) to see *)
  feasible : bool;  (** output passed Eqs. 7a–7g on the degraded problem *)
  objective : float;  (** objective value of the stage's output (0 if infeasible) *)
}

type budgets = {
  rescale_s : float;
  refine_s : float;
  resolve_s : float;
}

val default_budgets : budgets
(** 1 ms / 100 ms / 2 s — rescale is arithmetic on the matrices, refine
    one greedy pass, resolve a full LP-based solve. *)

type outcome = {
  allocation : Allocation.t;  (** feasible on the degraded problem *)
  stage : stage;  (** the stage that produced {!field-allocation} *)
  attempts : attempt list;  (** stages tried, in ladder order *)
}

val rescale : Problem.t -> Allocation.t -> Allocation.t
(** Stage 1 alone: [rescale degraded alloc] shrinks [alloc] onto the
    degraded problem's capacities.  Total (never raises) and feasible by
    construction whenever [alloc] was feasible on the healthy platform
    — the QCheck suite checks feasibility of the output regardless. *)

val run_stage :
  ?objective:Lp_relax.objective ->
  ?heuristic:Heuristics.t ->
  ?rng:Dls_util.Prng.t ->
  stage ->
  Problem.t ->
  Allocation.t ->
  (Allocation.t, string) result
(** One ladder rung in isolation ([degraded problem], [broken
    allocation]) — exposed for the bench series and the tests; [repair]
    composes these. *)

val repair :
  ?objective:Lp_relax.objective ->
  ?heuristic:Heuristics.t ->
  ?rng:Dls_util.Prng.t ->
  ?budgets:budgets ->
  Problem.t ->
  Allocation.t ->
  (outcome, string) result
(** [repair degraded alloc] climbs the ladder.  [degraded] is the
    problem on the residual platform (same payoffs, degraded
    capacities); [alloc] is the allocation that the platform event
    broke.  [objective] selects the LP objective for Resolve (default
    [Maxmin], matching {!Heuristics.run}); [heuristic] the Resolve
    heuristic (default LPRG); [rng] seeds LPRR if chosen.  [Error] only
    when no stage produced a feasible allocation, which cannot happen
    for a well-formed degraded problem (Rescale is total) — it guards
    against violated preconditions such as NaN capacities. *)
