(** LPRR: iterated randomized rounding (Section 5.2.3).

    Following Coudert and Rivano's practical variant of the
    Motwani–Naor–Raghavan scheme, LPRR repeatedly (i) solves the
    relaxation with all previously pinned connection counts, (ii) picks
    an unpinned route with non-zero fractional [beta~] uniformly at
    random, and (iii) pins it to [floor(beta~) + X] where
    [X ~ Bernoulli(frac(beta~))] — so the count rounds to the nearer
    integer with the higher probability.  When no unpinned route has a
    non-zero [beta~] left, the rest are pinned to 0 and a final solve
    yields the alphas.  One deviation keeps every iteration feasible
    (the paper notes Coudert–Rivano "always provides a feasible
    solution" without detail): an upward round is clamped to the
    connection slots actually remaining on the route.

    Cost: one LP solve per remote route — the K^2 factor the paper
    measures in Figure 7. *)

type stats = {
  allocation : Allocation.t;
  lp_solves : int;  (** LP solves performed, including the final one *)
  upward_rounds : int;  (** pins where the Bernoulli rounded up *)
}

val solve :
  ?objective:Lp_relax.objective ->
  rng:Dls_util.Prng.t ->
  Problem.t ->
  (stats, string) result

val solve_equal_probability :
  ?objective:Lp_relax.objective ->
  rng:Dls_util.Prng.t ->
  Problem.t ->
  (stats, string) result
(** Ablation: round up or down with probability 1/2 regardless of the
    fractional part.  The paper reports this variant "performed much
    worse than LPRR"; the ablation bench reproduces that comparison. *)
