module P = Dls_platform.Platform

type t = { platform : P.t; payoffs : float array }

let make platform ~payoffs =
  if Array.length payoffs <> P.num_clusters platform then
    invalid_arg "Problem.make: one payoff per cluster required";
  Array.iteri
    (fun k pi ->
      if not (Float.is_finite pi) || pi < 0.0 then
        invalid_arg (Printf.sprintf "Problem.make: payoff %d must be finite and >= 0" k))
    payoffs;
  { platform; payoffs = Array.copy payoffs }

let uniform platform =
  { platform; payoffs = Array.make (P.num_clusters platform) 1.0 }

let platform t = t.platform
let num_clusters t = P.num_clusters t.platform

let payoff t k =
  if k < 0 || k >= num_clusters t then invalid_arg "Problem.payoff: bad cluster";
  t.payoffs.(k)

let is_active t k = payoff t k > 0.0

let active t =
  List.filter (is_active t) (List.init (num_clusters t) Fun.id)

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@,payoffs:" P.pp t.platform;
  Array.iteri (fun k pi -> Format.fprintf fmt " pi_%d=%g" k pi) t.payoffs;
  Format.fprintf fmt "@]"
