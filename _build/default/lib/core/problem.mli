(** A multi-application steady-state divisible-load scheduling problem.

    Cluster [C^k] initially holds the input data of application [A_k]
    (Section 3 of the paper).  The payoff factor [pi_k] quantifies the
    relative worth of one load unit of [A_k]; a payoff of zero means the
    cluster has no application to run — its resources remain available
    to the other applications.  The fairness objectives (SUM and
    MAXMIN) range over {e active} applications, i.e. those with a
    strictly positive payoff. *)

type t

val make : Dls_platform.Platform.t -> payoffs:float array -> t
(** @raise Invalid_argument if the payoff array length differs from the
    number of clusters, or a payoff is negative or not finite. *)

val uniform : Dls_platform.Platform.t -> t
(** All payoffs set to 1 — one application per cluster, equal worth. *)

val platform : t -> Dls_platform.Platform.t
val num_clusters : t -> int
val payoff : t -> int -> float

val active : t -> int list
(** Clusters whose application has positive payoff, ascending. *)

val is_active : t -> int -> bool

val pp : Format.formatter -> t -> unit
