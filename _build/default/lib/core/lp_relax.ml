module P = Dls_platform.Platform

type objective = Sum | Maxmin

type 'num solution = {
  alpha : 'num array array;
  beta : 'num array array;
  objective_value : 'num;
  iterations : int;
}

type 'num outcome = Solution of 'num solution | Failed of string

let remote_pairs problem =
  let p = Problem.platform problem in
  let kk = P.num_clusters p in
  let acc = ref [] in
  for k = kk - 1 downto 0 do
    if Problem.is_active problem k then
      for l = kk - 1 downto 0 do
        if k <> l then begin
          match P.route p k l with
          | Some (_ :: _) -> acc := (k, l) :: !acc
          | Some [] | None -> ()
        end
      done
  done;
  !acc

module Encode (F : Dls_lp.Field.S) = struct
  module M = Dls_lp.Model.Make (F)

  (* Variable layout: one alpha variable per admissible (k, l) pair —
     always (k, k) for active k; (k, l) when a route exists — plus, for
     MAXMIN, one auxiliary variable t with rows t <= pi_k * alpha_k.
     [solver] lets the float instance route the model to the sparse
     revised simplex. *)
  let solve ?solver ?(objective = Maxmin) ?(fixed = []) ?max_iterations problem =
    let solve_model = match solver with Some f -> f | None -> M.solve in
    let p = Problem.platform problem in
    let kk = P.num_clusters p in
    let active = Problem.active problem in
    let zero_solution () =
      { alpha = Array.make_matrix kk kk F.zero;
        beta = Array.make_matrix kk kk F.zero;
        objective_value = F.zero;
        iterations = 0 }
    in
    if active = [] then Solution (zero_solution ())
    else begin
      let fixed_tbl = Hashtbl.create 16 in
      List.iter
        (fun ((k, l), v) ->
          if v < 0 then invalid_arg "Lp_relax: negative fixed beta";
          Hashtbl.replace fixed_tbl (k, l) v)
        fixed;
      let m = M.create () in
      let vars = Array.make_matrix kk kk None in
      let bottleneck = Array.make_matrix kk kk infinity in
      List.iter
        (fun k ->
          for l = 0 to kk - 1 do
            let admissible =
              if l = k then true
              else (
                match P.route p k l with Some _ -> true | None -> false)
            in
            if admissible then begin
              let v = M.add_var ~name:(Printf.sprintf "a_%d_%d" k l) m in
              vars.(k).(l) <- Some v;
              if l <> k then begin
                match P.route_bottleneck p k l with
                | Some bw -> bottleneck.(k).(l) <- bw
                | None -> assert false
              end
            end
          done)
        active;
      (* Pinned pairs: alpha <= v * g as an upper bound. *)
      Hashtbl.iter
        (fun (k, l) v ->
          match vars.(k).(l) with
          | Some var when k <> l && Float.is_finite bottleneck.(k).(l) ->
            M.set_upper_bound m var
              (F.mul (F.of_int v) (F.of_float bottleneck.(k).(l)))
          | Some _ | None ->
            invalid_arg "Lp_relax: fixed beta on a pair without a backbone route")
        fixed_tbl;
      (* Equation 7b: per-cluster compute capacity. *)
      for l = 0 to kk - 1 do
        let terms = ref [] in
        for k = 0 to kk - 1 do
          match vars.(k).(l) with
          | Some v -> terms := (v, F.one) :: !terms
          | None -> ()
        done;
        if !terms <> [] then M.add_le m !terms (F.of_float (P.speed p l))
      done;
      (* Equation 7c: per-cluster local link, outgoing plus incoming. *)
      for k = 0 to kk - 1 do
        let terms = ref [] in
        for l = 0 to kk - 1 do
          if l <> k then begin
            (match vars.(k).(l) with
             | Some v -> terms := (v, F.one) :: !terms
             | None -> ());
            match vars.(l).(k) with
            | Some v -> terms := (v, F.one) :: !terms
            | None -> ()
          end
        done;
        if !terms <> [] then M.add_le m !terms (F.of_float (P.local_bw p k))
      done;
      (* Equation 7d with betas eliminated: each unpinned crossing pair
         charges alpha/g slots; each pinned pair charges the constant v. *)
      let infeasible = ref None in
      for link = 0 to P.num_backbones p - 1 do
        let terms = ref [] in
        let rhs = ref (F.of_int (P.backbone p link).P.max_connect) in
        List.iter
          (fun (k, l) ->
            match vars.(k).(l) with
            | None -> ()
            | Some v -> begin
              match Hashtbl.find_opt fixed_tbl (k, l) with
              | Some fixed_v -> rhs := F.sub !rhs (F.of_int fixed_v)
              | None ->
                let g = bottleneck.(k).(l) in
                terms := (v, F.div F.one (F.of_float g)) :: !terms
            end)
          (P.routes_through p link);
        if F.compare !rhs F.zero < 0 then
          infeasible := Some (Printf.sprintf "pinned connections exceed backbone %d" link)
        else if !terms <> [] then M.add_le m !terms !rhs
      done;
      match !infeasible with
      | Some msg -> Failed msg
      | None ->
        (* Objective. *)
        let alpha_terms k =
          List.filter_map
            (fun l -> Option.map (fun v -> (v, F.one)) vars.(k).(l))
            (List.init kk Fun.id)
        in
        (match objective with
         | Sum ->
           let terms =
             List.concat_map
               (fun k ->
                 let pi = F.of_float (Problem.payoff problem k) in
                 List.map (fun (v, _) -> (v, pi)) (alpha_terms k))
               active
           in
           M.set_objective m terms
         | Maxmin ->
           let t = M.add_var ~name:"t" m in
           List.iter
             (fun k ->
               let pi = F.of_float (Problem.payoff problem k) in
               let row =
                 (t, F.one)
                 :: List.map (fun (v, _) -> (v, F.neg pi)) (alpha_terms k)
               in
               M.add_le m row F.zero)
             active;
           M.set_objective m [ (t, F.one) ]);
        let result = solve_model ?max_iterations m in
        (match result.M.status with
         | M.Solver.Optimal ->
           let alpha = Array.make_matrix kk kk F.zero in
           let beta = Array.make_matrix kk kk F.zero in
           for k = 0 to kk - 1 do
             for l = 0 to kk - 1 do
               match vars.(k).(l) with
               | None -> ()
               | Some v ->
                 let a = result.M.value v in
                 alpha.(k).(l) <- a;
                 if k <> l && Float.is_finite bottleneck.(k).(l) then begin
                   match Hashtbl.find_opt fixed_tbl (k, l) with
                   | Some fv -> beta.(k).(l) <- F.of_int fv
                   | None -> beta.(k).(l) <- F.div a (F.of_float bottleneck.(k).(l))
                 end
             done
           done;
           Solution
             { alpha; beta;
               objective_value = result.M.objective;
               iterations = result.M.iterations }
         | M.Solver.Infeasible -> Failed "LP infeasible"
         | M.Solver.Unbounded -> Failed "LP unbounded (malformed problem)"
         | M.Solver.Iteration_limit -> Failed "simplex iteration budget exhausted")
    end
end

module Float_encoder = Encode (Dls_lp.Field.Float)
module Exact_encoder = Encode (Dls_lp.Field.Exact)

let solve ?(engine = `Sparse) ?objective ?fixed ?max_iterations problem =
  let solver =
    match engine with
    | `Sparse -> Dls_lp.Model.Float.solve_auto
    | `Dense -> fun ?max_iterations m -> Dls_lp.Model.Float.solve ?max_iterations m
  in
  Float_encoder.solve ~solver ?objective ?fixed ?max_iterations problem

let solve_exact ?objective ?fixed ?max_iterations problem =
  Exact_encoder.solve ?objective ?fixed ?max_iterations problem
