(** Finite workloads on top of the periodic steady-state schedule.

    The paper motivates steady-state scheduling as a relaxation of
    makespan minimization: run the periodic schedule until the finite
    loads are exhausted, accept one extra period of start-up (the first
    period only communicates) and one of clean-up (the last only
    computes), and the resulting makespan is asymptotically optimal as
    the loads grow (its Section 1(i)-(iii) argument, and reference [8]).

    This module makes that concrete: given a reconstructed schedule and
    per-application load totals, it computes the exact makespan of the
    periodic execution, a lower bound no schedule can beat, and a
    sequential baseline — so examples and benches can exhibit both the
    asymptotic optimality and the benefit over non-overlapped
    execution.  All arithmetic is exact ({!Dls_num.Rat}). *)

type estimate = {
  periods : Dls_num.Bigint.t;  (** full steady-state periods needed *)
  makespan : Dls_num.Rat.t;  (** (periods + 1) * T_p, start-up included *)
  lower_bound : Dls_num.Rat.t;
  (** max_k W_k / alpha_k — no schedule with these steady rates
      finishes earlier *)
  efficiency : float;  (** lower_bound / makespan, in (0, 1] *)
}

val periodic : Schedule.t -> workloads:Dls_num.Rat.t array -> (estimate, string) result
(** [periodic schedule ~workloads] with [workloads.(k)] the total load
    of application [k].  Errors if some application has positive load
    but zero steady-state throughput, or the workload array length is
    wrong (a schedule does not know K; the array length is taken as
    authoritative and checked against the entries). *)

val sequential_baseline :
  Problem.t -> workloads:Dls_num.Rat.t array -> (Dls_num.Rat.t, string) result
(** Non-overlapped baseline: applications run one after the other, each
    at the best steady-state throughput it can reach {e alone} on the
    platform (its private MAXMIN optimum).  Concurrent steady-state
    execution beats this whenever resource sharing overlaps
    transfers and computation across applications. *)

val asymptotic_efficiency : Schedule.t -> workloads:Dls_num.Rat.t array -> scale:int -> float
(** Efficiency of {!periodic} with every workload multiplied by
    [scale]; tends to 1 as [scale] grows — the asymptotic-optimality
    claim, testable.
    @raise Invalid_argument if [scale < 1]. *)
