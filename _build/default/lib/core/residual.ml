module P = Dls_platform.Platform

type t = {
  speed : float array;
  local_bw : float array;
  connections : int array;
}

let full p =
  { speed = Array.init (P.num_clusters p) (P.speed p);
    local_bw = Array.init (P.num_clusters p) (P.local_bw p);
    connections =
      Array.init (P.num_backbones p) (fun i -> (P.backbone p i).P.max_connect) }

let of_allocation p alloc =
  let r = full p in
  let kk = P.num_clusters p in
  let clamp v = Float.max 0.0 v in
  for l = 0 to kk - 1 do
    let load = ref 0.0 in
    for k = 0 to kk - 1 do
      load := !load +. alloc.Allocation.alpha.(k).(l)
    done;
    r.speed.(l) <- clamp (r.speed.(l) -. !load)
  done;
  for k = 0 to kk - 1 do
    let traffic = ref 0.0 in
    for l = 0 to kk - 1 do
      if l <> k then
        traffic :=
          !traffic +. alloc.Allocation.alpha.(k).(l) +. alloc.Allocation.alpha.(l).(k)
    done;
    r.local_bw.(k) <- clamp (r.local_bw.(k) -. !traffic)
  done;
  for link = 0 to P.num_backbones p - 1 do
    let used =
      List.fold_left
        (fun acc (k, l) -> acc + alloc.Allocation.beta.(k).(l))
        0 (P.routes_through p link)
    in
    r.connections.(link) <- Stdlib.max 0 (r.connections.(link) - used)
  done;
  r

let speed t k = t.speed.(k)
let local_bw t k = t.local_bw.(k)
let connections t i = t.connections.(i)

let route_usable p t k l =
  match P.route p k l with
  | None -> false
  | Some links -> List.for_all (fun e -> t.connections.(e) >= 1) links

let bottleneck p t k l =
  match P.route p k l with
  | None -> 0.0
  | Some [] -> infinity
  | Some links ->
    if List.for_all (fun e -> t.connections.(e) >= 1) links then
      List.fold_left (fun acc e -> Float.min acc (P.backbone p e).P.bw) infinity links
    else 0.0

let consume_local t k amount = t.speed.(k) <- Float.max 0.0 (t.speed.(k) -. amount)

let consume_remote p t ~src ~dst amount =
  match P.route p src dst with
  | None -> invalid_arg "Residual.consume_remote: no route"
  | Some links ->
    if not (List.for_all (fun e -> t.connections.(e) >= 1) links) then
      invalid_arg "Residual.consume_remote: no connection slot left";
    List.iter (fun e -> t.connections.(e) <- t.connections.(e) - 1) links;
    t.speed.(dst) <- Float.max 0.0 (t.speed.(dst) -. amount);
    t.local_bw.(src) <- Float.max 0.0 (t.local_bw.(src) -. amount);
    t.local_bw.(dst) <- Float.max 0.0 (t.local_bw.(dst) -. amount)

let pp fmt t =
  Format.fprintf fmt "@[<v>residual:@,  speed:";
  Array.iter (fun s -> Format.fprintf fmt " %g" s) t.speed;
  Format.fprintf fmt "@,  local_bw:";
  Array.iter (fun g -> Format.fprintf fmt " %g" g) t.local_bw;
  Format.fprintf fmt "@,  connections:";
  Array.iter (fun c -> Format.fprintf fmt " %d" c) t.connections;
  Format.fprintf fmt "@]"
