(** Exact optimum of the mixed LP (7a)–(7g) by branch and bound.

    The paper writes "solving the mixed LP problem for the optimal
    solution takes exponential time; consequently we cannot use it in
    practice" — and compares heuristics against the LP upper bound
    instead.  At small scale we {e can} compute the true optimum: a
    depth-first branch and bound over the integer connection counts
    [beta_{k,l}], with the rational relaxation (betas pinned so far) as
    the pruning bound and route connection slack bounding each branch's
    domain.

    This unlocks sharper tests than the paper could run: on NP-hardness
    gadgets the exact MAXMIN optimum must equal the independence number
    (Theorem 1, exactly), and on small random platforms every heuristic
    must sit between zero and the optimum, which itself sits below the
    LP bound.

    Cost is exponential in the number of remote routes times the
    connection caps; intended for K up to ~5 clusters or gadgets of a
    dozen vertices.  The node budget turns runaway instances into an
    error rather than a hang. *)

type stats = {
  allocation : Allocation.t;
  objective_value : float;
  nodes : int;  (** LP relaxations solved *)
}

val solve :
  ?objective:Lp_relax.objective ->
  ?node_limit:int ->
  Problem.t ->
  (stats, string) result
(** [solve problem] returns a provably optimal integral allocation.
    Default [node_limit] is 20,000 relaxation solves. *)
