lib/core/residual.mli: Allocation Dls_platform Format
