lib/core/heuristics.ml: Dls_util Greedy Lp_relax Lpr Lprg Lprr Result String
