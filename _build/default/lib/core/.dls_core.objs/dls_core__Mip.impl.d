lib/core/mip.ml: Allocation Array Dls_platform Float Fun List Lp_relax Printf Problem Stdlib
