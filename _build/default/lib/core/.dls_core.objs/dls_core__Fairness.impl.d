lib/core/fairness.ml: Allocation Array Float List Problem
