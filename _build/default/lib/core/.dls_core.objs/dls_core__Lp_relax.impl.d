lib/core/lp_relax.ml: Array Dls_lp Dls_platform Float Fun Hashtbl List Option Printf Problem Stdlib
