lib/core/unbounded_baseline.ml: Allocation Array Dls_platform Float List Lp_relax Problem
