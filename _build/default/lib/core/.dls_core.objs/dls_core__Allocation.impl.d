lib/core/allocation.ml: Array Dls_platform Float Format List Problem
