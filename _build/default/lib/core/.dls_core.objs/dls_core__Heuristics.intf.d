lib/core/heuristics.mli: Allocation Dls_util Lp_relax Problem
