lib/core/repair.ml: Allocation Array Dls_platform Float Greedy Heuristics List Lp_relax Problem Residual Sys
