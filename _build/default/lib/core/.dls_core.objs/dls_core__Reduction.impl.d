lib/core/reduction.ml: Allocation Array Dls_graph Dls_platform Fun List Problem Stdlib
