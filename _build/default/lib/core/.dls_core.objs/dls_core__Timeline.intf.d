lib/core/timeline.mli: Dls_num Format Problem Schedule
