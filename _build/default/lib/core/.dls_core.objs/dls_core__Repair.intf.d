lib/core/repair.mli: Allocation Dls_util Heuristics Lp_relax Problem
