lib/core/mip.mli: Allocation Lp_relax Problem
