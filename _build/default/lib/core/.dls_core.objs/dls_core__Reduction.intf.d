lib/core/reduction.mli: Allocation Dls_graph Problem
