lib/core/pipeline.ml: Array Dls_lp Dls_platform Float Fun List Lp_relax Printf
