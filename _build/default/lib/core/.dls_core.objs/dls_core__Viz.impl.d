lib/core/viz.ml: Allocation Array Buffer Dls_platform Float Fun Printf Problem
