lib/core/lpr.ml: Allocation Array Dls_platform Float Lp_relax Problem
