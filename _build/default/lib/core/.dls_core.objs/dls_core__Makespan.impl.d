lib/core/makespan.ml: Array Dls_num Lp_relax Printf Problem Schedule Stdlib
