lib/core/lprr.mli: Allocation Dls_lp Dls_util Lp_relax Problem
