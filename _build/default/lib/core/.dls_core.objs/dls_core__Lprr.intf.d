lib/core/lprr.mli: Allocation Dls_util Lp_relax Problem
