lib/core/analysis.mli: Allocation Format Problem
