lib/core/problem.ml: Array Dls_platform Float Format Fun List Printf
