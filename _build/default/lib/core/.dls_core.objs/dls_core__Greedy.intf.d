lib/core/greedy.mli: Allocation Problem Residual
