lib/core/lp_relax.mli: Dls_lp Dls_num Problem
