lib/core/lp_relax.mli: Dls_num Problem
