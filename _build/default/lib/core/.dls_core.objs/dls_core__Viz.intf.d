lib/core/viz.mli: Allocation Problem
