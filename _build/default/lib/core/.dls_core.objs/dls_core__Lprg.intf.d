lib/core/lprg.mli: Allocation Lp_relax Problem
