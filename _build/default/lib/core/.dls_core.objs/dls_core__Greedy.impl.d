lib/core/greedy.ml: Allocation Array Dls_platform Float List Problem Residual
