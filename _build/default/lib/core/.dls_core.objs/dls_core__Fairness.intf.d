lib/core/fairness.mli: Allocation Problem
