lib/core/analysis.ml: Allocation Array Dls_platform Float Format List Printf Problem
