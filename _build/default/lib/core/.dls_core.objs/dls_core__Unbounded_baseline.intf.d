lib/core/unbounded_baseline.mli: Allocation Lp_relax Problem
