lib/core/schedule.mli: Allocation Dls_num Format Problem
