lib/core/lprr.ml: Allocation Array Dls_platform Dls_util Float Hashtbl List Lp_relax Problem Stdlib
