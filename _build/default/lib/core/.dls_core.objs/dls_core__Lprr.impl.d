lib/core/lprr.ml: Allocation Array Dls_lp Dls_platform Dls_util Float List Lp_relax Problem Result Stdlib
