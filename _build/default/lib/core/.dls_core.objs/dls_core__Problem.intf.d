lib/core/problem.mli: Dls_platform Format
