lib/core/schedule.ml: Allocation Array Dls_num Dls_platform Format List Printf Problem
