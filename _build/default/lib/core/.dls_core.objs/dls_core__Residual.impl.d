lib/core/residual.ml: Allocation Array Dls_platform Float Format List Stdlib
