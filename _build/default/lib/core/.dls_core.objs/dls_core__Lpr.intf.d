lib/core/lpr.mli: Allocation Lp_relax Problem
