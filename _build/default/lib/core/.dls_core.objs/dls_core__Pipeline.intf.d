lib/core/pipeline.mli: Dls_platform Lp_relax
