lib/core/lprg.ml: Greedy Lp_relax Lpr Problem Residual
