lib/core/timeline.ml: Array Dls_num Dls_platform Format Hashtbl List Option Printf Problem Schedule Stdlib
