lib/core/makespan.mli: Dls_num Problem Schedule
