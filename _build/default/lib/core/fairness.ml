let weighted_throughputs problem alloc =
  Array.of_list
    (List.map
       (fun k -> Problem.payoff problem k *. Allocation.app_throughput alloc k)
       (Problem.active problem))

let jain_index problem alloc =
  let xs = weighted_throughputs problem alloc in
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sum_sq <= 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sum_sq)
  end

let min_over_max problem alloc =
  let xs = weighted_throughputs problem alloc in
  if Array.length xs = 0 then 1.0
  else begin
    let mn = Array.fold_left Float.min infinity xs in
    let mx = Array.fold_left Float.max 0.0 xs in
    if mx <= 0.0 then 1.0 else Float.max 0.0 (mn /. mx)
  end
