module P = Dls_platform.Platform

type stats = {
  allocation : Allocation.t;
  objective_value : float;
  nodes : int;
}

let int_eps = 1e-6

(* Connection slots left on route (k, l) given the pins so far — the
   domain bound when branching on that pair. *)
let route_slack problem pins (k, l) =
  let p = Problem.platform problem in
  match P.route p k l with
  | None | Some [] -> 0
  | Some links ->
    List.fold_left
      (fun acc link ->
        let used =
          List.fold_left
            (fun u pair ->
              match List.assoc_opt pair pins with Some v -> u + v | None -> u)
            0
            (P.routes_through p link)
        in
        Stdlib.min acc ((P.backbone p link).P.max_connect - used))
      max_int links

let solve ?(objective = Lp_relax.Maxmin) ?(node_limit = 20_000) problem =
  let pairs = Lp_relax.remote_pairs problem in
  let kk = Problem.num_clusters problem in
  let nodes = ref 0 in
  let best_value = ref neg_infinity in
  let best : Allocation.t option ref = ref None in
  let exception Node_budget in
  (* [pins] fixes a prefix-closed set of pairs; unfixed pairs keep their
     minimal fractional beta = alpha / g in the relaxation. *)
  let rec explore pins unfixed =
    if !nodes >= node_limit then raise Node_budget;
    incr nodes;
    match Lp_relax.solve ~objective ~fixed:pins problem with
    | Lp_relax.Failed _ -> ()  (* infeasible pinning: prune *)
    | Lp_relax.Solution sol ->
      if sol.Lp_relax.objective_value <= !best_value +. int_eps then ()
      else begin
        (* Most fractional unpinned beta. *)
        let pick = ref None and pick_frac = ref int_eps in
        List.iter
          (fun (k, l) ->
            let b = sol.Lp_relax.beta.(k).(l) in
            let frac = Float.abs (b -. Float.round b) in
            if frac > !pick_frac then begin
              pick_frac := frac;
              pick := Some ((k, l), b)
            end)
          unfixed;
        match !pick with
        | None ->
          (* Every beta is (numerically) integral: this relaxation point
             is an integral solution.  Round the betas and record it. *)
          let alloc = Allocation.zero kk in
          for k = 0 to kk - 1 do
            for l = 0 to kk - 1 do
              alloc.Allocation.alpha.(k).(l) <- sol.Lp_relax.alpha.(k).(l);
              if k <> l then
                alloc.Allocation.beta.(k).(l) <-
                  int_of_float (Float.round sol.Lp_relax.beta.(k).(l))
            done
          done;
          if sol.Lp_relax.objective_value > !best_value then begin
            best_value := sol.Lp_relax.objective_value;
            best := Some alloc
          end
        | Some ((k, l), b) ->
          (* Branch on every admissible integer value, nearest to the
             fractional optimum first (best-first within the node). *)
          let cap = route_slack problem pins (k, l) in
          let values =
            List.init (cap + 1) Fun.id
            |> List.sort (fun a bv ->
                   Float.compare
                     (Float.abs (float_of_int a -. b))
                     (Float.abs (float_of_int bv -. b)))
          in
          let rest = List.filter (fun pair -> pair <> (k, l)) unfixed in
          List.iter (fun v -> explore (((k, l), v) :: pins) rest) values
      end
  in
  match explore [] pairs with
  | () -> begin
    match !best with
    | Some allocation ->
      Ok { allocation; objective_value = !best_value; nodes = !nodes }
    | None -> Error "MIP: no feasible integral solution found"
  end
  | exception Node_budget ->
    Error (Printf.sprintf "MIP: node budget (%d) exhausted" node_limit)
