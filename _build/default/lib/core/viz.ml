let allocation_dot problem alloc =
  let p = Problem.platform problem in
  let kk = Problem.num_clusters problem in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let max_rate =
    Array.fold_left
      (Array.fold_left (fun acc v -> Float.max acc v))
      1e-9 alloc.Allocation.alpha
  in
  add "digraph allocation {\n";
  add "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for k = 0 to kk - 1 do
    let local = alloc.Allocation.alpha.(k).(k) in
    let color = if Problem.is_active problem k then "#fde68a" else "#dbeafe" in
    add
      "  c%d [style=filled, fillcolor=\"%s\", label=\"C%d pi=%g\\ns=%g local=%.3g\"];\n"
      k color k (Problem.payoff problem k)
      (Dls_platform.Platform.speed p k)
      local
  done;
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      let a = alloc.Allocation.alpha.(k).(l) in
      if k <> l && a > 1e-9 then
        add "  c%d -> c%d [label=\"%.3g (beta=%d)\", penwidth=%.2f];\n" k l a
          alloc.Allocation.beta.(k).(l)
          (0.5 +. (3.5 *. a /. max_rate))
    done
  done;
  add "}\n";
  Buffer.contents buf

let save ~path problem alloc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (allocation_dot problem alloc))
