(** Periodic schedule reconstruction (Section 3.2 of the paper).

    Given a valid allocation with rational [alpha_{k,l} = u/v] and
    integer [beta_{k,l}], the schedule period is
    [T_p = lcm over the denominators v], and during each period cluster
    [k] computes the integer load [alpha_{l,k} * T_p] for each
    application [l] and ships the integer chunk [alpha_{k,l} * T_p] to
    each remote cluster [l] (received chunks are computed in the
    following period; the first period only communicates and the last
    only computes).  Everything here is exact: the arithmetic runs on
    {!Dls_num.Rat} / {!Dls_num.Bigint} because periods easily overflow
    machine integers. *)

type exact = {
  alpha : Dls_num.Rat.t array array;
  beta : int array array;
}
(** An allocation with exact rational work rates. *)

val exact_of_float : ?approx_max_den:int -> Allocation.t -> exact
(** Lift a float allocation to rationals.  By default each float is
    converted {e exactly} (every finite float is rational, so the result
    provably computes the same rates — at the price of power-of-two
    denominators up to [2^53] and therefore astronomically long
    periods).  With [approx_max_den] each rate is instead the best
    rational {e from below} with a bounded denominator
    ({!Dls_num.Rat.approx_of_float_below}), giving human-scale periods
    while provably never overshooting any capacity — the schedule built
    from a feasible allocation stays valid, trading at most
    [1/approx_max_den] throughput per entry. *)

val scale_down : exact -> factor:Dls_num.Rat.t -> exact
(** Multiply every work rate by [factor] (in (0, 1]); used to restore
    feasibility after an upward rational approximation.
    @raise Invalid_argument if [factor] is outside (0, 1]. *)

type compute_entry = {
  cluster : int;  (** where the work is executed *)
  app : int;  (** which application the load belongs to *)
  amount : Dls_num.Bigint.t;  (** load units per period *)
}

type transfer_entry = {
  src : int;
  dst : int;
  amount : Dls_num.Bigint.t;  (** load units of application [src] per period *)
  connections : int;  (** beta_{src,dst} parallel connections *)
}

type t = {
  period : Dls_num.Bigint.t;
  computes : compute_entry list;
  transfers : transfer_entry list;
}

val build : exact -> t
(** Smallest period making every per-period quantity integral. *)

val validate : Problem.t -> t -> (unit, string) result
(** Exact re-check of Equations 1–4 on the per-period integer loads
    (platform parameters are lifted to rationals exactly). *)

val app_throughput : t -> int -> Dls_num.Rat.t
(** Load of application [k] processed per time unit by the schedule:
    (local + shipped amounts) / period. *)

val pp : Format.formatter -> t -> unit
