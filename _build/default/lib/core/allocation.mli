(** Steady-state allocations and their feasibility (Equations 7a–7g).

    An allocation assigns [alpha.(k).(l)] — load units of application
    [A_k] shipped from cluster [k] and computed on cluster [l] per time
    unit — and [beta.(k).(l)] — the (integer) number of network
    connections opened for that traffic.  This module is the single
    source of truth for feasibility: every heuristic's output is checked
    against it in the test suite, and the experiment harness refuses to
    report objective values for infeasible allocations. *)

type t = {
  alpha : float array array;  (** K x K work matrix, non-negative *)
  beta : int array array;  (** K x K connection matrix, non-negative *)
}

val zero : int -> t
(** All-zero allocation for [K] clusters. *)

val copy : t -> t

val app_throughput : t -> int -> float
(** [alpha_k = sum_l alpha.(k).(l)] — load of application [k] processed
    per time unit (Equation 7a's aggregate). *)

val sum_objective : Problem.t -> t -> float
(** Equation 5: [sum_k pi_k * alpha_k]. *)

val maxmin_objective : Problem.t -> t -> float
(** Equation 6: [min_k pi_k * alpha_k] over {e active} applications;
    [0.] when no application is active. *)

val objective : [ `Sum | `Maxmin ] -> Problem.t -> t -> float

type violation =
  | Negative_alpha of int * int
  | Negative_beta of int * int
  | Cpu_exceeded of int  (** Equation 1 / 7b violated at this cluster *)
  | Local_link_exceeded of int  (** Equation 2 / 7c violated at this cluster *)
  | Connections_exceeded of int  (** Equation 3 / 7d violated at this backbone link *)
  | Bandwidth_exceeded of int * int  (** Equation 4 / 7e violated on this route *)
  | No_route of int * int  (** positive work between unconnected clusters *)
  | Inactive_sender of int  (** work shipped for a payoff-0 application *)

val pp_violation : Format.formatter -> violation -> unit

val check : ?eps:float -> Problem.t -> t -> violation list
(** All constraint violations, with tolerance [eps] (default [1e-6])
    scaled by each constraint's right-hand side.  An empty list means
    the allocation is a valid steady-state operating point. *)

val is_feasible : ?eps:float -> Problem.t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints only the non-zero entries. *)
