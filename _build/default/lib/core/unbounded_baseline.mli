(** The unbounded-connection baseline the paper argues against.

    Section 1 discusses prior multi-application work (Wong, Yu,
    Bharadwaj & Robertazzi's producer-consumer architecture, the paper's
    reference [34]) whose results are "mostly of theoretical interest as
    the authors assume that a data server can emit an unlimited number
    of messages in parallel" — i.e. no connection caps and no per-
    connection bandwidth grants, only link capacities.

    This module implements that model (the relaxation with the
    connection rows (7d/7e) removed) so the claim is measurable: how
    much throughput the idealized model promises, and how little of an
    idealized allocation survives on the realistic platform (its
    integer-connection repair).  The gap is the value of the paper's
    contribution. *)

type comparison = {
  idealized : float;  (** optimum with unlimited parallel connections *)
  realistic : float;  (** the paper's LP bound on the same platform *)
  repaired : float;
  (** objective of the idealized allocation after connection repair:
      betas set to [ceil (alpha / g_route)] and then scaled back until
      Equations 3–4 hold *)
}

val solve :
  ?objective:Lp_relax.objective ->
  Problem.t ->
  (float Lp_relax.solution, string) result
(** Optimum of the connection-free model (same solution shape as
    {!Lp_relax.solve}; the [beta] matrix is the fractional
    [alpha / g_route], reported for repair). *)

val compare : ?objective:Lp_relax.objective -> Problem.t -> (comparison, string) result
(** All three numbers on one problem. *)

val repair : Problem.t -> float Lp_relax.solution -> Allocation.t
(** Connection repair of an idealized solution: integer betas by ceiling
    the fractional connection counts, then a single proportional
    scale-down of the whole allocation until every realistic constraint
    holds.  Always feasible. *)
