module P = Dls_platform.Platform
module Prng = Dls_util.Prng

type stats = {
  allocation : Allocation.t;
  lp_solves : int;
  upward_rounds : int;
}

let floor_eps = 1e-9

(* Remaining connection slots on the route (k, l) after accounting for
   every already-pinned pair crossing each of its links. *)
let route_slack problem fixed_tbl (k, l) =
  let p = Problem.platform problem in
  match P.route p k l with
  | None | Some [] -> 0
  | Some links ->
    List.fold_left
      (fun acc link ->
        let used =
          List.fold_left
            (fun u pair ->
              match Hashtbl.find_opt fixed_tbl pair with
              | Some v -> u + v
              | None -> u)
            0
            (P.routes_through p link)
        in
        Stdlib.min acc ((P.backbone p link).P.max_connect - used))
      max_int links

let run ~equal_probability ?objective ~rng problem =
  let pairs = Lp_relax.remote_pairs problem in
  let fixed_tbl = Hashtbl.create 64 in
  let fixed_list () = Hashtbl.fold (fun pair v acc -> (pair, v) :: acc) fixed_tbl [] in
  let unfixed = ref pairs in
  let lp_solves = ref 0 in
  let upward = ref 0 in
  let failure = ref None in
  let finished = ref false in
  while not !finished && !failure = None do
    match Lp_relax.solve ?objective ~fixed:(fixed_list ()) problem with
    | Lp_relax.Failed msg -> failure := Some msg
    | Lp_relax.Solution sol ->
      incr lp_solves;
      let candidates =
        List.filter (fun (k, l) -> sol.Lp_relax.beta.(k).(l) > floor_eps) !unfixed
      in
      (match candidates with
       | [] ->
         (* No live fractional route left: pin the rest to zero. *)
         List.iter (fun pair -> Hashtbl.replace fixed_tbl pair 0) !unfixed;
         unfixed := [];
         finished := true
       | _ :: _ ->
         let (k, l) = Prng.pick rng (Array.of_list candidates) in
         let b = sol.Lp_relax.beta.(k).(l) in
         let fl = int_of_float (Float.floor (b +. floor_eps)) in
         let frac = Float.max 0.0 (b -. float_of_int fl) in
         let up =
           if equal_probability then Prng.bool rng ~p:0.5
           else Prng.bool rng ~p:frac
         in
         let v = if up then fl + 1 else fl in
         (* Feasibility clamp: never pin more slots than the route has. *)
         let v = Stdlib.min v (route_slack problem fixed_tbl (k, l)) in
         let v = Stdlib.max v 0 in
         if up && v = fl + 1 then incr upward;
         Hashtbl.replace fixed_tbl (k, l) v;
         unfixed := List.filter (fun pair -> pair <> (k, l)) !unfixed)
  done;
  match !failure with
  | Some msg -> Error msg
  | None ->
    (* Final solve with every beta pinned gives the alphas. *)
    (match Lp_relax.solve ?objective ~fixed:(fixed_list ()) problem with
     | Lp_relax.Failed msg -> Error msg
     | Lp_relax.Solution sol ->
       incr lp_solves;
       let kk = Problem.num_clusters problem in
       let alloc = Allocation.zero kk in
       for k = 0 to kk - 1 do
         for l = 0 to kk - 1 do
           alloc.Allocation.alpha.(k).(l) <- sol.Lp_relax.alpha.(k).(l)
         done
       done;
       Hashtbl.iter
         (fun (k, l) v -> alloc.Allocation.beta.(k).(l) <- v)
         fixed_tbl;
       Ok { allocation = alloc; lp_solves = !lp_solves; upward_rounds = !upward })

let solve ?objective ~rng problem =
  run ~equal_probability:false ?objective ~rng problem

let solve_equal_probability ?objective ~rng problem =
  run ~equal_probability:true ?objective ~rng problem
