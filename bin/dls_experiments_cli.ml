(* Command-line driver regenerating every table and figure of the paper.

   Subcommands: table1, fig5, fig6, fig7, aggregate, all.  Each prints a
   fixed-width table to stdout and optionally writes CSV next to it. *)

open Cmdliner
module E = Dls_experiments

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let out_arg =
  let doc = "Also write the result as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record hierarchical spans and write a Chrome trace_event JSON file to \
     $(docv) at exit (load it in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Enable the metrics registry (solver, heuristic, simulator and campaign \
     counters/histograms) and write a JSONL dump to $(docv) at exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let log_arg =
  let doc =
    "Append structured JSONL log records (one JSON object per line: ts, \
     level, msg, typed fields) to $(docv), live."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc = "Log threshold for --log: error, warn, info or debug." in
  Arg.(value
       & opt
           (enum
              [ ("error", Dls_obs.Log.Error); ("warn", Dls_obs.Log.Warn);
                ("info", Dls_obs.Log.Info); ("debug", Dls_obs.Log.Debug) ])
           Dls_obs.Log.Info
       & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let flight_arg =
  let doc =
    "Keep a bounded in-memory flight recorder of recent log records, span \
     completions and fault instants, dumped as JSONL to $(docv) at exit, on \
     an uncaught exception, and on SIGUSR1 — the post-mortem for a crashed \
     or wedged run."
  in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let telemetry_conv =
  let parse s =
    match Dls_obs.Publish.addr_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Dls_obs.Publish.addr_to_string a))

let telemetry_arg =
  let doc =
    "Serve live Prometheus text exposition of the metrics registry on \
     $(docv) (PORT, HOST:PORT or unix:PATH) for the whole run; scrape with \
     curl or Prometheus.  Implies the registry is enabled."
  in
  Arg.(value & opt (some telemetry_conv) None
       & info [ "telemetry" ] ~docv:"ADDR" ~doc)

let publish_arg =
  let doc =
    "Append periodic metrics-snapshot deltas to $(docv) as timestamped \
     JSONL, one tick per --publish-interval; folding the deltas together \
     reconstructs the cumulative registry state at any tick.  Implies the \
     registry is enabled."
  in
  Arg.(value & opt (some string) None & info [ "publish" ] ~docv:"FILE" ~doc)

let publish_interval_arg =
  let doc = "Seconds between --publish ticks." in
  Arg.(value & opt float 1.0 & info [ "publish-interval" ] ~docv:"SECS" ~doc)

(* The full observability flag set, bundled so every long-running
   subcommand picks it up as one Cmdliner term. *)
type obs_flags = {
  o_trace : string option;
  o_metrics : string option;
  o_log : string option;
  o_log_level : Dls_obs.Log.level;
  o_flight : string option;
  o_telemetry : Dls_obs.Publish.addr option;
  o_publish : string option;
  o_publish_interval : float;
}

let obs_term =
  let mk o_trace o_metrics o_log o_log_level o_flight o_telemetry o_publish
      o_publish_interval =
    { o_trace; o_metrics; o_log; o_log_level; o_flight; o_telemetry;
      o_publish; o_publish_interval }
  in
  Term.(const mk $ trace_arg $ metrics_arg $ log_arg $ log_level_arg
        $ flight_arg $ telemetry_arg $ publish_arg $ publish_interval_arg)

(* Observability is configured once before the run and flushed once at
   process exit — [at_exit] rather than an unwind handler so the files
   are also written on the [exit 1] error paths, where a partial trace
   is exactly the one worth looking at.  [Obs.finalize] is idempotent,
   so the handler is registered unconditionally. *)
let with_obs o f =
  Dls_obs.Obs.configure ?trace:o.o_trace ?metrics:o.o_metrics ?log:o.o_log
    ~log_level:o.o_log_level ?flight:o.o_flight ?telemetry:o.o_telemetry
    ?publish:o.o_publish ~publish_interval:o.o_publish_interval ();
  at_exit Dls_obs.Obs.finalize;
  f ()

let lp_backend_arg =
  let doc =
    "Revised-simplex core for every LP solve in the run: $(b,dense) (the \
     PR-1 eta-file solver) or $(b,sparse) (the Markowitz-LU core with \
     presolve and partial pricing; same optima, built for large K)."
  in
  Arg.(value
       & opt
           (enum [ ("dense", Dls_lp.Backend.Dense); ("sparse", Dls_lp.Backend.Sparse) ])
           (Dls_lp.Backend.default ())
       & info [ "lp-backend" ] ~docv:"CORE" ~doc)

let seed_arg default =
  let doc = "PRNG seed; equal seeds reproduce runs exactly." in
  Arg.(value & opt int default & info [ "seed" ] ~docv:"SEED" ~doc)

let per_k_arg default =
  let doc = "Random platforms per value of K." in
  Arg.(value & opt int default & info [ "per-k" ] ~docv:"N" ~doc)

let ks_arg default =
  let doc = "Values of K (number of clusters) to sweep." in
  Arg.(value & opt (list int) default & info [ "ks" ] ~docv:"K,K,..." ~doc)

let emit ?out table =
  Format.printf "%a" E.Report.pp_table table;
  match out with
  | Some path ->
    E.Report.write_csv ~path table;
    Format.printf "CSV written to %s@." path
  | None -> ()

let table1_cmd =
  let run lp_backend out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    emit ?out (E.Table1.grid_table ());
    emit (E.Table1.stats_table (E.Table1.sample_stats ()))
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the Table 1 parameter grid and platform statistics.")
    Term.(const run $ lp_backend_arg $ out_arg)

let fig5_cmd =
  let run lp_backend seed ks per_k out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    emit ?out (E.Fig5.table (E.Fig5.run ~seed ~ks ~per_k ()))
  in
  Cmd.v
    (Cmd.info "fig5"
       ~doc:"LPRG and G vs the LP upper bound, by K (Figure 5).")
    Term.(const run $ lp_backend_arg $ seed_arg 1 $ ks_arg [ 5; 15; 25; 35; 45; 55 ] $ per_k_arg 4
          $ out_arg)

let fig6_cmd =
  let run lp_backend seed ks per_k out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    emit ?out (E.Fig6.table (E.Fig6.run ~seed ~ks ~per_k ()))
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"LPRR vs G on small topologies (Figure 6).")
    Term.(const run $ lp_backend_arg $ seed_arg 2 $ ks_arg [ 15; 20; 25 ] $ per_k_arg 4 $ out_arg)

let fig7_cmd =
  let lprr_max_k_arg =
    let doc = "Measure LPRR only for K up to $(docv) (it costs K^2 LP solves)." in
    Arg.(value & opt int 20 & info [ "lprr-max-k" ] ~docv:"K" ~doc)
  in
  let run lp_backend seed ks per_k lprr_max_k out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    emit ?out (E.Fig7.table (E.Fig7.run ~seed ~ks ~per_k ~lprr_max_k ()))
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Running times of the heuristics, by K (Figure 7).")
    Term.(const run $ lp_backend_arg $ seed_arg 3 $ ks_arg [ 10; 20; 30; 40 ] $ per_k_arg 3
          $ lprr_max_k_arg $ out_arg)

let aggregate_cmd =
  let run lp_backend seed ks per_k out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    emit ?out (E.Aggregate.table (E.Aggregate.run ~seed ~ks ~per_k ()))
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"Whole-sweep aggregates of Section 6.1 (LPRG/G ratios, LPR poorness).")
    Term.(const run $ lp_backend_arg $ seed_arg 4 $ ks_arg [ 5; 15; 25; 35; 45 ] $ per_k_arg 4
          $ out_arg)

let ablation_cmd =
  let run lp_backend seed out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    emit ?out (E.Ablation.rounding_table (E.Ablation.rounding_policy ~seed ()));
    emit (E.Ablation.tight_table (E.Ablation.network_tight ~seed:(seed + 1) ()));
    emit (E.Ablation.workload_table (E.Ablation.workload ~seed:(seed + 2) ()));
    emit (E.Ablation.topology_table (E.Ablation.topology_models ~seed:(seed + 3) ()));
    emit (E.Ablation.baseline_table (E.Ablation.unbounded_baseline ~seed:(seed + 4) ()))
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:
         "Ablations: LPRR rounding policy, network-tight regime, workload \
          sensitivity.")
    Term.(const run $ lp_backend_arg $ seed_arg 6 $ out_arg)

let sweep_cmd =
  let count_arg =
    let doc = "Platforms per value of K." in
    Arg.(value & opt int 5 & info [ "per-k" ] ~docv:"N" ~doc)
  in
  let with_lprr_arg =
    Arg.(value & flag
         & info [ "with-lprr" ] ~doc:"Also run LPRR on every platform (K^2 LP solves).")
  in
  let run lp_backend seed ks per_k with_lprr out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    let oc = match out with Some path -> Some (open_out path) | None -> None in
    let emit_line line =
      match oc with
      | Some oc ->
        output_string oc line;
        output_char oc '\n';
        flush oc
      | None -> print_endline line
    in
    emit_line E.Sweep.csv_header;
    let completed, skipped =
      E.Sweep.run ~seed ~ks ~per_k ~with_lprr
        ~on_record:(fun r -> emit_line (E.Sweep.to_csv_row r))
        ()
    in
    Option.iter close_out oc;
    Format.eprintf "sweep: %d platforms evaluated, %d skipped@." completed skipped
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Stream a sampled Table 1 campaign as CSV (one row per platform: \
          grid point, LP bounds, heuristic values, timings).")
    Term.(const run $ lp_backend_arg $ seed_arg 12 $ ks_arg [ 5; 15; 25; 35; 45; 55 ] $ count_arg
          $ with_lprr_arg $ out_arg)

let campaign_cmd =
  let out_jsonl_arg =
    let doc =
      "Append every record to $(docv) as JSONL (one JSON entry per line) and \
       maintain a checkpoint manifest at $(docv).manifest."
    in
    Arg.(value & opt (some string) None
         & info [ "out-jsonl" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Replay an existing --out-jsonl log, drop any torn trailing line, and \
       evaluate only the remaining indices."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let shards_arg =
    let doc = "Partition indices round-robin into $(docv) shards." in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let shard_arg =
    let doc =
      "Run only shard $(docv) (0-based); omit to run all shards sequentially."
    in
    Arg.(value & opt (some int) None & info [ "shard" ] ~docv:"I" ~doc)
  in
  let checkpoint_every_arg =
    let doc = "Rewrite the checkpoint manifest every $(docv) records." in
    Arg.(value & opt int 256 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (default: available cores, capped at 8)." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D" ~doc)
  in
  let chunk_arg =
    let doc =
      "Records evaluated per parallel burst; memory stays O($(docv))."
    in
    Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let with_lprr_arg =
    Arg.(value & flag
         & info [ "with-lprr" ]
             ~doc:"Also run LPRR on every platform (K^2 LP solves).")
  in
  let lprr_max_k_arg =
    let doc = "With --with-lprr, only run LPRR for K up to $(docv)." in
    Arg.(value & opt (some int) None & info [ "lprr-max-k" ] ~docv:"K" ~doc)
  in
  let no_timings_arg =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Record all wall-clock fields as 0, making the log \
                   byte-reproducible (used by the determinism tests).")
  in
  let quiet_arg =
    Arg.(value & flag
         & info [ "quiet" ] ~doc:"Suppress progress lines (warnings only).")
  in
  let run lp_backend seed ks per_k with_lprr lprr_max_k no_timings shards shard resume
      out_jsonl checkpoint_every domains chunk quiet obs =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if quiet then Logs.Warning else Logs.Info));
    Dls_lp.Backend.set_default lp_backend;
    let config =
      { E.Campaign.seed; ks; per_k; with_lprr; lprr_max_k;
        measure_time = not no_timings }
    in
    with_obs obs @@ fun () ->
    match
      E.Campaign.run ?domains ?chunk ~checkpoint_every ~shards ?shard ~resume
        ?out:out_jsonl config
    with
    | Error msg ->
      Format.eprintf "campaign failed: %s@." msg;
      exit 1
    | Ok s ->
      emit (E.Campaign.summary_table s);
      if not no_timings && s.E.Campaign.s_evaluated > 0 then
        emit (E.Campaign.times_table s)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a paper-scale evaluation campaign: per-index PRNG streams, \
          sharding, an append-only JSONL record log with a checkpoint \
          manifest, and crash-safe --resume.")
    Term.(const run $ lp_backend_arg $ seed_arg 12 $ ks_arg [ 5; 15; 25; 35; 45; 55 ]
          $ per_k_arg 5 $ with_lprr_arg $ lprr_max_k_arg $ no_timings_arg
          $ shards_arg $ shard_arg $ resume_arg $ out_jsonl_arg
          $ checkpoint_every_arg $ domains_arg $ chunk_arg $ quiet_arg
          $ obs_term)

let resilience_cmd =
  let rates_arg =
    let doc = "Fault event rates (per entity per period) to sweep." in
    Arg.(value & opt (list float) [ 0.02; 0.05; 0.1 ]
         & info [ "rates" ] ~docv:"R,R,..." ~doc)
  in
  let k_arg =
    let doc = "Clusters per platform." in
    Arg.(value & opt int 12 & info [ "k" ] ~docv:"K" ~doc)
  in
  let per_rate_arg =
    let doc = "Random platforms per fault rate." in
    Arg.(value & opt int 4 & info [ "per-rate" ] ~docv:"N" ~doc)
  in
  let periods_arg =
    let doc = "Simulated periods per run." in
    Arg.(value & opt int 20 & info [ "periods" ] ~docv:"P" ~doc)
  in
  let kill_arg =
    Arg.(value & flag
         & info [ "kill" ]
             ~doc:"Drop transfers wedged by a fault instead of stalling them.")
  in
  let out_jsonl_arg =
    let doc =
      "Append every record to $(docv) as JSONL and maintain a checkpoint \
       manifest at $(docv).manifest."
    in
    Arg.(value & opt (some string) None & info [ "out-jsonl" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc = "Replay an existing --out-jsonl log and evaluate only the rest." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (default: available cores, capped at 8)." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D" ~doc)
  in
  let no_timings_arg =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Record repair wall-clock as 0, making the log \
                   byte-reproducible.")
  in
  let run lp_backend seed k rates per_rate periods kill no_timings resume out_jsonl domains
      out obs =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    let config =
      { E.Resilience.seed; k; rates; per_rate; periods;
        policy = (if kill then Dls_flowsim.Faults.Kill else Dls_flowsim.Faults.Stall);
        measure_time = not no_timings }
    in
    with_obs obs @@ fun () ->
    let records = ref [] in
    match
      E.Resilience.run ?domains ~resume ?out:out_jsonl
        ~on_entry:(function
          | E.Resilience.Record r -> records := r :: !records
          | E.Resilience.Skipped _ -> ())
        config
    with
    | Error msg ->
      Format.eprintf "resilience failed: %s@." msg;
      exit 1
    | Ok _ ->
      let records =
        List.sort
          (fun a b ->
            Stdlib.compare a.E.Resilience.index b.E.Resilience.index)
          !records
      in
      emit ?out (E.Resilience.table config records)
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Sweep fault rates: simulate each heuristic's schedule under \
          seed-derived platform faults, repair it against the degraded \
          platform, and report throughput retained (inherits the campaign \
          runner's checkpoint/resume).")
    Term.(const run $ lp_backend_arg $ seed_arg 21 $ k_arg $ rates_arg $ per_rate_arg
          $ periods_arg $ kill_arg $ no_timings_arg $ resume_arg $ out_jsonl_arg
          $ domains_arg $ out_arg $ obs_term)

let dynamic_cmd =
  let k_arg =
    let doc = "Clusters per platform." in
    Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc)
  in
  let platforms_arg =
    let doc = "Random platforms to evaluate each policy on." in
    Arg.(value & opt int 3 & info [ "platforms" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc = "Synthetic workload length (ignored with --swf)." in
    Arg.(value & opt int 40 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Synthetic Poisson arrival rate (ignored with --swf)." in
    Arg.(value & opt float 0.4 & info [ "rate" ] ~docv:"R" ~doc)
  in
  let heavy_arg =
    Arg.(value & flag
         & info [ "heavy" ]
             ~doc:"Pareto (heavy-tailed) job sizes instead of uniform.")
  in
  let swf_arg =
    let doc =
      "Replay this SWF (Standard Workload Format) trace instead of \
       synthesizing a workload."
    in
    Arg.(value & opt (some string) None & info [ "swf" ] ~docv:"FILE" ~doc)
  in
  let work_scale_arg =
    let doc = "Multiply every SWF job's work by $(docv) (load knob)." in
    Arg.(value & opt float 1.0 & info [ "work-scale" ] ~docv:"S" ~doc)
  in
  let fault_rate_arg =
    let doc = "Link fault rate (per entity per time unit); 0 disables faults." in
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"R" ~doc)
  in
  let policies_arg =
    let doc = "Admission policies to compare (lp-repair, fcfs, easy)." in
    Arg.(value & opt (list string) [ "lp-repair"; "fcfs"; "easy" ]
         & info [ "policies" ] ~docv:"P,P,..." ~doc)
  in
  let events_arg =
    let doc =
      "Also write the byte-stable event log of index 0 (first platform, \
       first policy) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let out_jsonl_arg =
    let doc =
      "Append every record to $(docv) as JSONL and maintain a checkpoint \
       manifest at $(docv).manifest."
    in
    Arg.(value & opt (some string) None & info [ "out-jsonl" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc = "Replay an existing --out-jsonl log and evaluate only the rest." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (default: available cores, capped at 8)." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D" ~doc)
  in
  let no_timings_arg =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Record re-plan wall-clock as 0, making the log \
                   byte-reproducible.")
  in
  let run lp_backend seed k platforms jobs rate heavy swf work_scale fault_rate
      policy_names no_timings resume out_jsonl domains events out obs =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    let policies =
      List.map
        (fun name ->
          match Dls_dynsim.Dynamic.policy_of_name name with
          | Some p -> p
          | None ->
            Format.eprintf "unknown policy %S (want lp-repair, fcfs or easy)@."
              name;
            exit 1)
        policy_names
    in
    let config =
      { E.Dynexp.seed; k; platforms; jobs; rate; heavy; swf; work_scale;
        fault_rate; policies; measure_time = not no_timings }
    in
    with_obs obs @@ fun () ->
    let records = ref [] in
    match
      E.Dynexp.run ?domains ~resume ?out:out_jsonl
        ~on_entry:(function
          | E.Dynexp.Record r -> records := r :: !records
          | E.Dynexp.Skipped _ -> ())
        config
    with
    | Error msg ->
      Format.eprintf "dynamic failed: %s@." msg;
      exit 1
    | Ok _ ->
      let records =
        List.sort
          (fun a b -> Stdlib.compare a.E.Dynexp.index b.E.Dynexp.index)
          !records
      in
      emit ?out (E.Dynexp.table config records);
      (match events with
      | None -> ()
      | Some path -> (
        match E.Dynexp.replay config ~index:0 with
        | Error msg ->
          Format.eprintf "event-log replay failed: %s@." msg;
          exit 1
        | Ok (_, r) ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc r.Dls_dynsim.Dynamic.event_log);
          Format.printf "event log written to %s@." path))
  in
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:
         "Replay a dynamic workload (synthetic or SWF trace) through the \
          event-driven simulator, re-planning on every arrival, completion \
          and fault via the repair ladder, and compare admission policies \
          (LP-repair vs FCFS vs EASY backfilling) on the same traces \
          (inherits the campaign runner's checkpoint/resume).")
    Term.(const run $ lp_backend_arg $ seed_arg 33 $ k_arg $ platforms_arg $ jobs_arg $ rate_arg
          $ heavy_arg $ swf_arg $ work_scale_arg $ fault_rate_arg
          $ policies_arg $ no_timings_arg
          $ resume_arg $ out_jsonl_arg $ domains_arg $ events_arg $ out_arg
          $ obs_term)

let adaptivity_cmd =
  let run lp_backend seed out =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    match E.Adaptivity.run ~seed () with
    | Ok trace -> emit ?out (E.Adaptivity.table trace)
    | Error msg ->
      Format.eprintf "adaptivity run failed: %s@." msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "adaptivity"
       ~doc:
         "Static plan vs per-period re-optimization under bandwidth variation \
          (the paper's motivation (iii)).")
    Term.(const run $ lp_backend_arg $ seed_arg 9 $ out_arg)

let all_cmd =
  let run lp_backend seed =
    setup_logs ();
    Dls_lp.Backend.set_default lp_backend;
    emit (E.Table1.grid_table ());
    emit (E.Table1.stats_table (E.Table1.sample_stats ~seed ()));
    emit (E.Fig5.table (E.Fig5.run ~seed ()));
    emit (E.Fig6.table (E.Fig6.run ~seed:(seed + 1) ()));
    emit (E.Fig7.table (E.Fig7.run ~seed:(seed + 2) ()));
    emit (E.Aggregate.table (E.Aggregate.run ~seed:(seed + 3) ()));
    emit (E.Ablation.rounding_table (E.Ablation.rounding_policy ~seed:(seed + 4) ()));
    emit (E.Ablation.tight_table (E.Ablation.network_tight ~seed:(seed + 5) ()));
    emit (E.Ablation.workload_table (E.Ablation.workload ~seed:(seed + 6) ()));
    match E.Adaptivity.run ~seed:(seed + 7) () with
    | Ok trace -> emit (E.Adaptivity.table trace)
    | Error msg -> Format.eprintf "adaptivity run failed: %s@." msg
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment with default sizes.")
    Term.(const run $ lp_backend_arg $ seed_arg 1)

let () =
  let info =
    Cmd.info "dls_experiments" ~version:"1.0.0"
      ~doc:
        "Reproduce the evaluation of 'A realistic network/application model for \
         scheduling divisible loads on large-scale platforms' (IPDPS 2005)."
  in
  exit (Cmd.eval (Cmd.group info [ table1_cmd; fig5_cmd; fig6_cmd; fig7_cmd;
                                   aggregate_cmd; ablation_cmd; adaptivity_cmd;
                                   sweep_cmd; campaign_cmd; resilience_cmd;
                                   dynamic_cmd; all_cmd ]))
