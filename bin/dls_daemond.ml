(* Long-running allocation daemon plus a scriptable client.

   [serve] supervises the event-loop server over a WAL-backed state:
   kill -9 it mid-run and the next [serve] replays the journal back to
   the exact accepted state.  [client] speaks one framed-JSON request
   per invocation — enough for the CI smoke scripts and shell
   experiments without a second tool. *)

open Cmdliner
module J = Dls_util.Json
module D = Dls_daemon

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let addr_conv =
  let parse s =
    match Dls_obs.Publish.addr_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt a ->
        Format.pp_print_string fmt (Dls_obs.Publish.addr_to_string a) )

let addr_arg =
  let doc = "Listen/connect address: PORT, HOST:PORT or unix:PATH." in
  Arg.(required & opt (some addr_conv) None & info [ "addr" ] ~docv:"ADDR" ~doc)

(* ------------------------------------------------------------------ *)
(* Observability flags (same set as the experiments CLI)               *)
(* ------------------------------------------------------------------ *)

type obs_flags = {
  o_trace : string option;
  o_metrics : string option;
  o_log : string option;
  o_log_level : Dls_obs.Log.level;
  o_flight : string option;
  o_telemetry : Dls_obs.Publish.addr option;
  o_publish : string option;
  o_publish_interval : float;
}

let obs_term =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON file to $(docv) at exit.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Enable the metrics registry (daemon.* counters included) \
                   and dump JSONL to $(docv) at exit.")
  in
  let log =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:"Append structured JSONL log records to $(docv), live.")
  in
  let log_level =
    Arg.(value
         & opt
             (enum
                [ ("error", Dls_obs.Log.Error); ("warn", Dls_obs.Log.Warn);
                  ("info", Dls_obs.Log.Info); ("debug", Dls_obs.Log.Debug) ])
             Dls_obs.Log.Info
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Log threshold for --log: error, warn, info or debug.")
  in
  let flight =
    Arg.(value & opt (some string) None
         & info [ "flight" ] ~docv:"FILE"
             ~doc:"Bounded in-memory flight recorder, dumped as JSONL to \
                   $(docv) at exit, on an uncaught exception and on \
                   SIGUSR1; server crashes caught by the supervisor are \
                   recorded here before the restart.")
  in
  let telemetry =
    Arg.(value & opt (some addr_conv) None
         & info [ "telemetry" ] ~docv:"ADDR"
             ~doc:"Serve live Prometheus exposition of the metrics registry \
                   (daemon.* series included) on $(docv).")
  in
  let publish =
    Arg.(value & opt (some string) None
         & info [ "publish" ] ~docv:"FILE"
             ~doc:"Append periodic metrics-snapshot deltas to $(docv).")
  in
  let publish_interval =
    Arg.(value & opt float 1.0
         & info [ "publish-interval" ] ~docv:"SECS"
             ~doc:"Seconds between --publish ticks.")
  in
  let mk o_trace o_metrics o_log o_log_level o_flight o_telemetry o_publish
      o_publish_interval =
    { o_trace; o_metrics; o_log; o_log_level; o_flight; o_telemetry;
      o_publish; o_publish_interval }
  in
  Term.(const mk $ trace $ metrics $ log $ log_level $ flight $ telemetry
        $ publish $ publish_interval)

let configure_obs o =
  Dls_obs.Obs.configure ?trace:o.o_trace ?metrics:o.o_metrics ?log:o.o_log
    ~log_level:o.o_log_level ?flight:o.o_flight ?telemetry:o.o_telemetry
    ?publish:o.o_publish ~publish_interval:o.o_publish_interval ()

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let load_platform platform_file gen_k gen_seed =
  match platform_file with
  | Some path -> Dls_platform.Platform_io.load ~path
  | None ->
    let params = { Dls_platform.Generator.default_params with k = gen_k } in
    Ok
      (Dls_platform.Generator.generate
         (Dls_util.Prng.create ~seed:gen_seed)
         params)

let serve_cmd =
  let platform_arg =
    Arg.(value & opt (some string) None
         & info [ "platform" ] ~docv:"FILE"
             ~doc:"Nominal platform file ($(b,dls_solve --dump-platform) \
                   format).  Default: generate one with --gen-k/--gen-seed.")
  in
  let gen_k_arg =
    Arg.(value & opt int 8
         & info [ "gen-k" ] ~docv:"K"
             ~doc:"Clusters of the generated platform (no --platform).")
  in
  let gen_seed_arg =
    Arg.(value & opt int 0
         & info [ "gen-seed" ] ~docv:"SEED"
             ~doc:"Seed of the generated platform (no --platform).")
  in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"FILE"
             ~doc:"Write-ahead log: accepted mutations are appended (and \
                   fsynced) here before they are acknowledged, and replayed \
                   on startup — kill -9 and restart lands in the exact \
                   pre-crash state.  Without it the daemon is in-memory \
                   only.")
  in
  let queue_cap_arg =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Bounded request queue; beyond it requests are answered \
                   $(b,overloaded) with a retry_after_ms hint.")
  in
  let max_conns_arg =
    Arg.(value & opt int 64
         & info [ "max-conns" ] ~docv:"N" ~doc:"Connection cap.")
  in
  let conn_timeout_arg =
    Arg.(value & opt float 10.0
         & info [ "conn-timeout" ] ~docv:"SECS"
             ~doc:"Idle-connection reap threshold (the slowloris bound).")
  in
  let budget_arg =
    Arg.(value & opt float 500.0
         & info [ "budget-ms" ] ~docv:"MS"
             ~doc:"Default per-request solve budget for get_schedule \
                   requests that carry none.")
  in
  let breaker_threshold_arg =
    Arg.(value & opt int 3
         & info [ "breaker-threshold" ] ~docv:"N"
             ~doc:"Consecutive LP deadline blowouts before the circuit \
                   breaker opens and re-solves are skipped.")
  in
  let breaker_backoff_arg =
    Arg.(value & opt float 1.0
         & info [ "breaker-backoff" ] ~docv:"SECS"
             ~doc:"First breaker-open interval; doubles per re-open, \
                   jittered.")
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Seed of the breaker/backoff jitter streams.")
  in
  let max_restarts_arg =
    Arg.(value & opt int 100
         & info [ "max-restarts" ] ~docv:"N"
             ~doc:"Supervisor gives up after this many serving-loop crashes.")
  in
  let allow_crash_arg =
    Arg.(value & flag
         & info [ "allow-crash" ]
             ~doc:"Honour the $(b,crash) request (tests/CI only): raises in \
                   the serving loop so the supervisor restart path can be \
                   exercised from a script.")
  in
  let workers_arg =
    Arg.(value & opt int 0
         & info [ "workers" ] ~docv:"N"
             ~doc:"Solver worker domains behind the event loop; 0 \
                   (default) solves inline on the loop.")
  in
  let no_resident_arg =
    Arg.(value & flag
         & info [ "no-resident" ]
             ~doc:"Disable the resident warm-LP handles: every \
                   Resolve-LP rung re-encodes and cold-solves (the \
                   pre-batching baseline; used by the load benchmark).")
  in
  let no_coalesce_arg =
    Arg.(value & flag
         & info [ "no-coalesce" ]
             ~doc:"Disable request batching: every get_schedule gets \
                   its own solve even when concurrent requests target \
                   the same state seq.")
  in
  let run addr platform_file gen_k gen_seed wal queue_cap max_conns
      conn_timeout budget_ms breaker_threshold breaker_backoff seed
      max_restarts allow_crash workers no_resident no_coalesce obs =
    setup_logs ();
    configure_obs obs;
    at_exit Dls_obs.Obs.finalize;
    match load_platform platform_file gen_k gen_seed with
    | Error msg ->
      Format.eprintf "dls_daemond: %s@." msg;
      exit 2
    | Ok platform ->
      let config =
        {
          (D.Server.default_config addr) with
          queue_cap;
          max_conns;
          conn_timeout;
          default_budget_s = budget_ms /. 1000.0;
          breaker_threshold;
          breaker_base_backoff_s = breaker_backoff;
          seed;
          allow_crash;
          workers;
          resident = not no_resident;
          coalesce = not no_coalesce;
        }
      in
      let load () =
        match wal with
        | None -> Ok (D.State.create platform, None)
        | Some path ->
          Result.map
            (fun (state, journal) -> (state, Some journal))
            (D.Journal.open_ ~path ~platform)
      in
      (* Each supervisor restart opens a fresh Obs epoch so sinks are
         reattached exactly as a process restart would. *)
      let on_restart _exn _n =
        Dls_obs.Obs.finalize ();
        configure_obs obs
      in
      (match
         D.Supervisor.run ~on_restart ~max_restarts config ~load
       with
      | Ok () -> ()
      | Error msg ->
        Format.eprintf "dls_daemond: %s@." msg;
        exit 1)
  in
  let doc = "run the supervised allocation daemon" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const run $ addr_arg $ platform_arg $ gen_k_arg $ gen_seed_arg
          $ wal_arg $ queue_cap_arg $ max_conns_arg $ conn_timeout_arg
          $ budget_arg $ breaker_threshold_arg $ breaker_backoff_arg
          $ seed_arg $ max_restarts_arg $ allow_crash_arg $ workers_arg
          $ no_resident_arg $ no_coalesce_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let connect addr =
  match addr with
  | Dls_obs.Publish.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | Dls_obs.Publish.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
        | _ -> failwith ("cannot resolve " ^ host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (ip, port));
    fd

let parse_request op op_args objective budget_ms =
  let module P = D.Protocol in
  match (op, op_args) with
  | "register", [ app; cluster; payoff ] -> (
    match (int_of_string_opt cluster, float_of_string_opt payoff) with
    | Some cluster, Some payoff ->
      Ok (P.Mutate (P.Register_app { app; cluster; payoff }))
    | _ -> Error "register: usage APP CLUSTER PAYOFF")
  | "register", _ -> Error "register: usage APP CLUSTER PAYOFF"
  | "retire", [ app ] -> Ok (P.Mutate (P.Retire_app { app }))
  | "retire", _ -> Error "retire: usage APP"
  | "delta", [ json ] ->
    Result.bind (J.of_string json) (fun j ->
        match j with
        | J.Arr kinds ->
          Result.map
            (fun ks -> P.Mutate (P.Platform_delta ks))
            (List.fold_left
               (fun acc k ->
                 Result.bind acc (fun ks ->
                     Result.map
                       (fun k -> k :: ks)
                       (Dls_flowsim.Faults.kind_of_json k)))
               (Ok []) (List.rev kinds))
        | _ -> Error "delta: expected a JSON array of fault events")
  | "delta", _ -> Error "delta: usage '[{\"fault\":...},...]'"
  | "get", [] ->
    let objective =
      match objective with
      | "sum" -> Dls_core.Lp_relax.Sum
      | _ -> Dls_core.Lp_relax.Maxmin
    in
    Ok (P.Get_schedule { objective; budget_ms })
  | "get", _ -> Error "get: takes no positional arguments"
  | "health", [] -> Ok P.Health
  | "health", _ -> Error "health: takes no positional arguments"
  | "drain", [] -> Ok P.Drain
  | "drain", _ -> Error "drain: takes no positional arguments"
  | "crash", [] -> Ok P.Crash
  | "crash", _ -> Error "crash: takes no positional arguments"
  | op, _ -> Error (Printf.sprintf "unknown op %S" op)

let client_cmd =
  let op_arg =
    let doc =
      "Request: $(b,register) APP CLUSTER PAYOFF, $(b,retire) APP, \
       $(b,delta) FAULTS-JSON, $(b,get), $(b,health), $(b,drain) or \
       $(b,crash)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let op_args_arg =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS")
  in
  let objective_arg =
    Arg.(value & opt string "maxmin"
         & info [ "objective" ] ~docv:"OBJ"
             ~doc:"get: LP objective, sum or maxmin.")
  in
  let budget_arg =
    Arg.(value & opt (some float) None
         & info [ "budget-ms" ] ~docv:"MS"
             ~doc:"get: per-request solve deadline.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~docv:"SECS" ~doc:"Reply timeout.")
  in
  let linger_arg =
    Arg.(value & opt (some float) None
         & info [ "linger" ] ~docv:"SECS"
             ~doc:"Misbehave on purpose: send only half of the request \
                   frame, hold the connection open for $(docv) seconds, \
                   then exit without finishing — the slow-client probe the \
                   CI soak uses to check the server reaps rather than \
                   wedges.")
  in
  let run addr op op_args objective budget_ms timeout linger =
    setup_logs ();
    match parse_request op op_args objective budget_ms with
    | Error msg ->
      Format.eprintf "dls_daemond client: %s@." msg;
      exit 2
    | Ok req -> (
      let payload = J.to_string (D.Protocol.request_to_json req) in
      match connect addr with
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "dls_daemond client: cannot connect to %s: %s@."
          (Dls_obs.Publish.addr_to_string addr)
          (Unix.error_message e);
        exit 1
      | fd -> (
        match linger with
        | Some secs ->
          (* Half a frame, then stall: from the server's side this is a
             slowloris client that must be reaped, never waited on. *)
          let framed = D.Protocol.frame payload in
          let half = String.length framed / 2 in
          let _ = Unix.write_substring fd framed 0 half in
          Unix.sleepf secs;
          Unix.close fd
        | None -> (
          D.Protocol.write_frame fd payload;
          let buf = Buffer.create 256 in
          match D.Protocol.read_frame ~timeout ~buf fd with
          | Ok reply ->
            print_endline reply;
            Unix.close fd;
            let ok =
              match
                Result.bind (J.of_string reply) (fun j ->
                    match J.member "status" j with
                    | Some (J.Str s) -> Ok s
                    | _ -> Error "no status")
              with
              | Ok "ok" -> true
              | _ -> false
            in
            if not ok then exit 3
          | Error msg ->
            Format.eprintf "dls_daemond client: %s@." msg;
            Unix.close fd;
            exit 1)))
  in
  let doc = "send one framed-JSON request to a running daemon" in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(const run $ addr_arg $ op_arg $ op_args_arg $ objective_arg
          $ budget_arg $ timeout_arg $ linger_arg)

let () =
  let doc = "fault-tolerant divisible-load allocation daemon" in
  let info = Cmd.info "dls_daemond" ~version:"%%VERSION%%" ~doc in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; client_cmd ]))
