(* Benchmark harness: regenerates every table and figure of the paper
   (reduced default sizes; the dls_experiments CLI scales them up) and
   micro-benchmarks each experiment's computational kernel with
   Bechamel — one Test.make group per table/figure.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
module E = Dls_experiments
module Prng = Dls_util.Prng
open Dls_core

(* ------------------------------------------------------------------ *)
(* Part 1: reproduction series (the paper's tables and figures)        *)
(* ------------------------------------------------------------------ *)

let reproduction () =
  Format.printf "=== Reproduction series (reduced sizes; see EXPERIMENTS.md) ===@.@.";
  Format.printf "%a@." E.Report.pp_table (E.Table1.grid_table ());
  Format.printf "%a@." E.Report.pp_table
    (E.Table1.stats_table (E.Table1.sample_stats ~per_k:3 ()));
  Format.printf "%a@." E.Report.pp_table
    (E.Fig5.table (E.Fig5.run ~ks:[ 5; 15; 25; 35 ] ~per_k:3 ()));
  Format.printf "%a@." E.Report.pp_table
    (E.Fig6.table (E.Fig6.run ~ks:[ 15; 20 ] ~per_k:2 ()));
  Format.printf "%a@." E.Report.pp_table
    (E.Fig7.table (E.Fig7.run ~ks:[ 10; 20; 30 ] ~per_k:2 ~lprr_max_k:15 ()));
  Format.printf "%a@." E.Report.pp_table
    (E.Aggregate.table (E.Aggregate.run ~per_k:3 ()));
  Format.printf "%a@." E.Report.pp_table
    (E.Ablation.rounding_table (E.Ablation.rounding_policy ~ks:[ 8 ] ~per_k:3 ()));
  Format.printf "%a@." E.Report.pp_table
    (E.Ablation.tight_table (E.Ablation.network_tight ~ks:[ 5; 10; 15 ] ~per_k:4 ()));
  Format.printf "%a@." E.Report.pp_table
    (E.Ablation.workload_table (E.Ablation.workload ~per_setting:2 ()))

(* ------------------------------------------------------------------ *)
(* Part 1b: warm- vs cold-started LPRR (wall clock + solver counters)  *)
(* ------------------------------------------------------------------ *)

(* Same platform, same coin stream (copied rng): both paths run the
   same K^2-solve workload; only the solver strategy differs (carry the
   basis vs rebuild from scratch).  Degenerate MAXMIN optima mean the
   random trajectories can still drift, so this compares workloads, not
   bit-identical solve sequences. *)
let lprr_warm_vs_cold ?(seed = 42) ?(ks = [ 15; 20; 25 ]) ?(per_k = 2) () =
  Format.printf
    "=== LPRR warm- vs cold-started LP re-solves (same coins) ===@.@.";
  Format.printf "%-4s %-10s %-10s %-8s %-8s %-8s %-8s %-8s@." "K" "warm-s"
    "cold-s" "speedup" "pivots" "reinv" "warm#" "solves";
  let rng = Prng.create ~seed in
  List.iter
    (fun k ->
      let tw = ref 0.0 and tc = ref 0.0 and used = ref 0 in
      let pivots = ref 0 and reinv = ref 0 in
      let warm_n = ref 0 and solves = ref 0 in
      for _ = 1 to per_k do
        let p = E.Measure.sample_problem rng ~k in
        let coins = Prng.split rng in
        let warm_run, dtw =
          E.Measure.time (fun () ->
              Lprr.solve ~warm:true ~objective:Lp_relax.Maxmin
                ~rng:(Prng.copy coins) p)
        in
        let cold_run, dtc =
          E.Measure.time (fun () ->
              Lprr.solve ~warm:false ~objective:Lp_relax.Maxmin
                ~rng:(Prng.copy coins) p)
        in
        match (warm_run, cold_run) with
        | Ok w, Ok _ ->
          incr used;
          tw := !tw +. dtw;
          tc := !tc +. dtc;
          (match w.Lprr.counters with
           | Some c ->
             pivots := !pivots + c.Dls_lp.Revised_simplex.pivots;
             reinv := !reinv + c.Dls_lp.Revised_simplex.reinversions;
             warm_n := !warm_n + c.Dls_lp.Revised_simplex.warm_starts;
             solves := !solves + c.Dls_lp.Revised_simplex.solves
           | None -> ())
        | _ -> ()
      done;
      if !used > 0 then begin
        let n = float_of_int !used in
        Format.printf "%-4d %-10.3f %-10.3f %-8.2f %-8.0f %-8.0f %-8.0f %-8.0f@."
          k (!tw /. n) (!tc /. n)
          (!tc /. Float.max 1e-12 !tw)
          (float_of_int !pivots /. n)
          (float_of_int !reinv /. n)
          (float_of_int !warm_n /. n)
          (float_of_int !solves /. n)
      end
      else Format.printf "%-4d (no feasible platforms)@." k)
    ks;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 1b': LP backend scaling (dense eta-file vs sparse Markowitz)   *)
(* ------------------------------------------------------------------ *)

(* One MAXMIN relaxation per K through both revised-simplex cores.
   Connectivity shrinks as 20/K past K = 50 so the backbone count (and
   with it the LP) grows roughly linearly instead of quadratically —
   the regime the sparse core is built for.  The dense core sits out
   the largest sizes (its basis is a dense m x m matrix). *)
let lp_scale_series ?(seed = 91) ?(ks = [ 25; 100; 200; 400 ])
    ?(dense_max_k = 100) () =
  Format.printf
    "=== LP backend scaling (MAXMIN relaxation, one platform per K) ===@.@.";
  Format.printf "%-5s %-10s %-10s %-8s %-10s %-10s@." "K" "dense-s" "sparse-s"
    "speedup" "dense-piv" "sparse-piv";
  List.iter
    (fun k ->
      let rng = Prng.create ~seed:(seed + k) in
      let params =
        { Dls_platform.Generator.default_params with
          Dls_platform.Generator.k;
          connectivity = Float.min 0.4 (20.0 /. float_of_int k) }
      in
      let platform = Dls_platform.Generator.generate rng params in
      let payoffs = Array.make k 1.0 in
      let problem = Problem.make platform ~payoffs in
      let solve backend =
        E.Measure.time (fun () ->
            Lp_relax.solve ~backend ~objective:Lp_relax.Maxmin problem)
      in
      let sparse, ts = solve Dls_lp.Backend.Sparse in
      let spiv =
        match sparse with
        | Lp_relax.Solution s -> string_of_int s.Lp_relax.iterations
        | Lp_relax.Failed _ -> "fail"
      in
      if k <= dense_max_k then begin
        let dense, td = solve Dls_lp.Backend.Dense in
        let dpiv =
          match dense with
          | Lp_relax.Solution s -> string_of_int s.Lp_relax.iterations
          | Lp_relax.Failed _ -> "fail"
        in
        (match (dense, sparse) with
         | Lp_relax.Solution d, Lp_relax.Solution s
           when Float.abs (d.Lp_relax.objective_value -. s.Lp_relax.objective_value)
                > 1e-6 *. Float.max 1.0 (Float.abs d.Lp_relax.objective_value)
           ->
           Format.printf "  !! backends disagree at K=%d: %.9g vs %.9g@." k
             d.Lp_relax.objective_value s.Lp_relax.objective_value
         | _ -> ());
        Format.printf "%-5d %-10.3f %-10.3f %-8.2f %-10s %-10s@." k td ts
          (td /. Float.max 1e-12 ts) dpiv spiv
      end
      else
        Format.printf "%-5d %-10s %-10.3f %-8s %-10s %-10s@." k "-" ts "-" "-"
          spiv)
    ks;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 1c: campaign-runner throughput (chunked streaming map scaling) *)
(* ------------------------------------------------------------------ *)

(* Same campaign, increasing domain counts: per-index PRNG streams make
   the records identical whatever the pool width, so this isolates the
   scheduling overhead and scaling of Parallel.map_chunked. *)
let campaign_throughput ?(ks = [ 10; 15 ]) ?(per_k = 6) () =
  Format.printf "=== Campaign runner throughput (identical records per row) ===@.@.";
  Format.printf "%-8s %-10s %-12s %-8s@." "domains" "wall-s" "records/s" "records";
  let widths =
    List.sort_uniq compare [ 1; 2; Dls_util.Parallel.num_domains () ]
  in
  List.iter
    (fun domains ->
      let config =
        { E.Campaign.default_config with E.Campaign.ks; per_k; seed = 77 }
      in
      match E.Campaign.run ~domains config with
      | Error msg -> Format.printf "%-8d failed: %s@." domains msg
      | Ok s ->
        Format.printf "%-8d %-10.3f %-12.1f %-8d@." domains s.E.Campaign.s_wall
          (float_of_int s.E.Campaign.s_evaluated
           /. Float.max 1e-9 s.E.Campaign.s_wall)
          s.E.Campaign.s_evaluated)
    widths;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 1d: resilience series (fault-sim throughput, repair latency)   *)
(* ------------------------------------------------------------------ *)

(* Fault-injected simulation speed (events/sec through the simulator's
   re-equilibration path) and the cost of each Repair ladder rung on the
   end-of-run degraded platform. *)
let resilience_series ?(seed = 55) ?(ks = [ 10; 20; 30 ]) ?(per_k = 3) () =
  Format.printf "=== Resilience series (fault simulation + repair ladder) ===@.@.";
  Format.printf "%-4s %-8s %-10s %-12s %-12s %-12s %-12s@." "K" "events"
    "events/s" "sim-s" "rescale-ms" "refine-ms" "resolve-ms";
  let rng = Prng.create ~seed in
  List.iter
    (fun k ->
      let events = ref 0 and sim_s = ref 0.0 in
      let stage_ms = [| 0.0; 0.0; 0.0 |] and stage_n = [| 0; 0; 0 |] in
      for _ = 1 to per_k do
        let pr = E.Measure.sample_problem rng ~k in
        let p = Problem.platform pr in
        let a = Greedy.solve pr in
        let periods = 20 in
        let plan =
          Dls_flowsim.Faults.random ~seed:(Prng.int rng ~lo:0 ~hi:1_000_000)
            ~horizon:(float_of_int periods) ~link_rate:0.3 ~cluster_rate:0.15 p
        in
        let stats, dt =
          E.Measure.time (fun () ->
              Dls_flowsim.Simulator.run ~periods ~warmup:2 ~faults:plan pr a)
        in
        events := !events + stats.Dls_flowsim.Simulator.fault_events;
        sim_s := !sim_s +. dt;
        let degraded =
          Dls_flowsim.Faults.degraded_at p plan ~time:(float_of_int periods)
        in
        let payoffs =
          Array.init (Problem.num_clusters pr) (fun c -> Problem.payoff pr c)
        in
        let dpr = Problem.make degraded ~payoffs in
        List.iteri
          (fun i stage ->
            let r, dt = E.Measure.time (fun () -> Repair.run_stage stage dpr a) in
            match r with
            | Ok _ ->
              stage_ms.(i) <- stage_ms.(i) +. (dt *. 1e3);
              stage_n.(i) <- stage_n.(i) + 1
            | Error _ -> ())
          [ Repair.Rescale; Repair.Refine; Repair.Resolve ]
      done;
      let mean_ms i =
        if stage_n.(i) = 0 then Float.nan
        else stage_ms.(i) /. float_of_int stage_n.(i)
      in
      Format.printf "%-4d %-8d %-10.1f %-12.4f %-12.4f %-12.4f %-12.4f@." k
        !events
        (float_of_int !events /. Float.max 1e-9 !sim_s)
        (!sim_s /. float_of_int per_k)
        (mean_ms 0) (mean_ms 1) (mean_ms 2))
    ks;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 1e: dynamic-workload series (events/sec, re-plan latency p99)  *)
(* ------------------------------------------------------------------ *)

(* The event-driven simulator end to end: how many arrival/completion/
   fault events per second the loop sustains, and the tail latency of
   one re-plan through the repair ladder — the figure that decides
   whether online re-planning keeps up with a live trace. *)
let dynsim_series ?(seed = 61) ?(ks = [ 4; 8 ]) ?(jobs = 30) () =
  Format.printf "=== Dynamic-workload series (event loop + re-plan ladder) ===@.@.";
  Format.printf "%-4s %-8s %-10s %-10s %-14s %-14s@." "K" "events" "wall-s"
    "events/s" "replan-p50-ms" "replan-p99-ms";
  List.iter
    (fun k ->
      let rng = Prng.create ~seed:(seed + k) in
      let params = E.Measure.sample_params rng ~k in
      let platform = Dls_platform.Generator.generate rng params in
      let wl =
        Dls_dynsim.Workload.synthetic ~seed:(seed + k) ~jobs ~rate:0.5
          ~clusters:k ()
      in
      let r, wall =
        E.Measure.time (fun () -> Dls_dynsim.Dynamic.run platform wl)
      in
      let ms = Array.map (fun s -> s *. 1e3) r.Dls_dynsim.Dynamic.replan_seconds in
      Format.printf "%-4d %-8d %-10.4f %-10.1f %-14.4f %-14.4f@." k
        r.Dls_dynsim.Dynamic.events wall
        (float_of_int r.Dls_dynsim.Dynamic.events /. Float.max 1e-9 wall)
        (Dls_util.Stats.percentile ms ~p:50.0)
        (Dls_util.Stats.percentile ms ~p:99.0))
    ks;
  Format.printf "@."

(* Budgeted daemon solves: which repair-ladder rung each budget can
   afford, and what it costs — the latency/quality trade the daemon's
   deadline machinery navigates per request. *)
let daemon_series ?(seed = 71) ?(ks = [ 6; 10 ]) () =
  let module DS = Dls_daemon.Solver in
  let module DP = Dls_daemon.Protocol in
  Format.printf "=== Daemon solve-ladder series (deadline-budgeted rungs) ===@.@.";
  Format.printf "%-4s %-10s %-14s %-12s %-10s %-9s@." "K" "budget-ms" "rung"
    "objective" "solve-ms" "degraded";
  List.iter
    (fun k ->
      let pf =
        Dls_platform.Generator.generate
          (Prng.create ~seed:(seed + k))
          { Dls_platform.Generator.default_params with k }
      in
      let st = Dls_daemon.State.create pf in
      let apply m =
        match Dls_daemon.State.apply st m with
        | Ok () -> ()
        | Error e -> failwith e
      in
      for c = 0 to k - 1 do
        if c mod 3 = 0 then
          apply
            (DP.Register_app
               { app = Printf.sprintf "bench%d" c; cluster = c; payoff = 1.0 })
      done;
      apply
        (DP.Platform_delta
           [ Dls_flowsim.Faults.Link_degrade { link = 0; factor = 0.5 } ]);
      let problem = Dls_daemon.State.problem st in
      let base = Dls_core.Allocation.zero k in
      List.iter
        (fun budget_ms ->
          let breaker = DS.breaker () in
          let t0 = Unix.gettimeofday () in
          match
            DS.solve ~breaker ~objective:Lp_relax.Maxmin
              ~budget_s:(budget_ms /. 1000.0) ~base problem
          with
          | Ok o ->
            Format.printf "%-4d %-10.1f %-14s %-12.4f %-10.3f %-9b@." k
              budget_ms
              (DS.rung_name o.DS.rung)
              o.DS.objective_value
              ((Unix.gettimeofday () -. t0) *. 1e3)
              o.DS.degraded
          | Error e ->
            Format.printf "%-4d %-10.1f solve failed: %s@." k budget_ms e)
        [ 0.0; 5.0; 1000.0 ])
    ks;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 1g: daemon load series (sustained req/s under client load)     *)
(* ------------------------------------------------------------------ *)

(* The first daemon point on the BENCH trajectory: sustained
   throughput, tail latency and shed rate under a deterministic client
   population ([Dls_daemon.Load]), comparing the single-threaded cold
   baseline (workers = 0, no resident handle, no coalescing) against
   the warm configuration (resident incremental LP + request batching
   + a 4-domain worker pool) at equal K and offered load.  One JSON
   line per configuration, so CI can parse thresholds out of the
   output. *)
let daemon_load_series ?(seed = 81) ?(k = 8) ?(clients = 8)
    ?(duration_s = 5.0) () =
  let module DD = Dls_daemon in
  let module J = Dls_util.Json in
  Format.printf
    "=== Daemon load series (K=%d, %d clients, %.1fs per mode) ===@.@." k
    clients duration_s;
  let health_num name j =
    match J.member name j with Some (J.Num v) -> v | _ -> nan
  in
  let health_probe addr =
    let fd =
      match addr with
      | Dls_obs.Publish.Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | _ -> failwith "bench daemon is unix-domain"
    in
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    DD.Protocol.write_frame fd
      (J.to_string (DD.Protocol.request_to_json DD.Protocol.Health));
    let buf = Buffer.create 256 in
    match DD.Protocol.read_frame ~timeout:10.0 ~buf fd with
    | Ok reply -> (
      match J.of_string reply with
      | Ok j -> j
      | Error e -> failwith ("health reply: " ^ e))
    | Error e -> failwith ("health probe: " ^ e)
  in
  let run_mode ~label ~workers ~resident ~coalesce =
    let dir = Filename.temp_file "dls_bench_daemon" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with _ -> ())
    @@ fun () ->
    let pf =
      Dls_platform.Generator.generate (Prng.create ~seed)
        { Dls_platform.Generator.default_params with k }
    in
    let state = DD.State.create pf in
    for c = 0 to k - 1 do
      if c mod 2 = 0 then
        match
          DD.State.apply state
            (DD.Protocol.Register_app
               { app = Printf.sprintf "load%d" c; cluster = c; payoff = 1.0 })
        with
        | Ok () -> ()
        | Error e -> failwith e
    done;
    let addr = Dls_obs.Publish.Unix_sock (Filename.concat dir "d.sock") in
    let config =
      { (DD.Server.default_config addr) with
        DD.Server.workers; resident; coalesce; queue_cap = 256 }
    in
    let stop = Atomic.make false in
    let ready = Atomic.make false in
    let thread =
      Thread.create
        (fun () ->
          ignore
            (DD.Server.serve
               ~should_stop:(fun () -> Atomic.get stop)
               ~on_ready:(fun () -> Atomic.set ready true)
               config state None))
        ()
    in
    let t0 = Unix.gettimeofday () in
    while (not (Atomic.get ready)) && Unix.gettimeofday () -. t0 < 5.0 do
      Thread.yield ()
    done;
    if not (Atomic.get ready) then failwith "bench daemon did not come up";
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Thread.join thread)
    @@ fun () ->
    let stats =
      DD.Load.run ~mode:DD.Load.Closed ~mutate_every:16 ~addr
        ~seed:(seed + 1) ~clients ~duration_s ~k ()
    in
    let health = health_probe addr in
    let extra =
      [ ("mode", J.Str label);
        ("workers", J.Num (float_of_int workers));
        ("k", J.Num (float_of_int k));
        ("clients", J.Num (float_of_int clients));
        ("solves", J.Num (health_num "solves" health));
        ("coalesced", J.Num (health_num "coalesced" health));
        ("warm_hits", J.Num (health_num "warm_hits" health));
        ("rebuilds", J.Num (health_num "rebuilds" health)) ]
    in
    Format.printf "%s@." (J.to_string (DD.Load.to_json ~extra stats));
    DD.Load.rps stats
  in
  let base_rps =
    run_mode ~label:"baseline" ~workers:0 ~resident:false ~coalesce:false
  in
  let warm_rps =
    run_mode ~label:"warm" ~workers:4 ~resident:true ~coalesce:true
  in
  if base_rps > 0.0 then
    Format.printf "@.warm/baseline speedup: %.2fx@." (warm_rps /. base_rps);
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks, one group per table/figure       *)
(* ------------------------------------------------------------------ *)

(* Fixed inputs are allocated outside the staged closures so only the
   kernel under study is measured. *)

let problem_of ~seed ~k =
  let rng = Prng.create ~seed in
  E.Measure.sample_problem rng ~k

let table1_tests =
  (* Kernel of Table 1: instantiating a random platform from the grid. *)
  let rng = Prng.create ~seed:100 in
  Test.make_grouped ~name:"table1"
    [ Test.make ~name:"generate-k15"
        (Staged.stage (fun () ->
             ignore (E.Measure.sample_problem rng ~k:15)));
      Test.make ~name:"generate-k45"
        (Staged.stage (fun () ->
             ignore (E.Measure.sample_problem rng ~k:45))) ]

let fig5_tests =
  (* Kernels of Figure 5: the LP relaxation bound, G, and LPRG. *)
  let p10 = problem_of ~seed:101 ~k:10 in
  let p20 = problem_of ~seed:102 ~k:20 in
  Test.make_grouped ~name:"fig5"
    [ Test.make ~name:"lp-bound-k10"
        (Staged.stage (fun () ->
             ignore (Heuristics.lp_bound ~objective:Lp_relax.Maxmin p10)));
      Test.make ~name:"lp-bound-k20"
        (Staged.stage (fun () ->
             ignore (Heuristics.lp_bound ~objective:Lp_relax.Maxmin p20)));
      Test.make ~name:"greedy-k20"
        (Staged.stage (fun () -> ignore (Greedy.solve p20)));
      Test.make ~name:"lprg-k10"
        (Staged.stage (fun () ->
             ignore (Lprg.solve ~objective:Lp_relax.Maxmin p10))) ]

let fig6_tests =
  (* Kernel of Figure 6: LPRR's iterated rounding (one LP per route). *)
  let p8 = problem_of ~seed:103 ~k:8 in
  let rng = Prng.create ~seed:104 in
  Test.make_grouped ~name:"fig6"
    [ Test.make ~name:"lprr/warm-k8"
        (Staged.stage (fun () ->
             ignore (Lprr.solve ~warm:true ~objective:Lp_relax.Maxmin ~rng p8)));
      Test.make ~name:"lprr/cold-k8"
        (Staged.stage (fun () ->
             ignore (Lprr.solve ~warm:false ~objective:Lp_relax.Maxmin ~rng p8)));
      Test.make ~name:"lprr-equal-prob-k8"
        (Staged.stage (fun () ->
             ignore (Lprr.solve_equal_probability ~objective:Lp_relax.Maxmin ~rng p8))) ]

let fig7_tests =
  (* Figure 7 compares heuristic running times; these kernels are the
     timed units. *)
  let p30 = problem_of ~seed:105 ~k:30 in
  Test.make_grouped ~name:"fig7"
    [ Test.make ~name:"greedy-k30"
        (Staged.stage (fun () -> ignore (Greedy.solve p30)));
      Test.make ~name:"lpr-k30"
        (Staged.stage (fun () -> ignore (Lpr.solve ~objective:Lp_relax.Maxmin p30))) ]

let engine_tests =
  (* Ablation: dense tableau vs sparse revised simplex on the same
     relaxation (DESIGN.md's solver substitution). *)
  let p25 = problem_of ~seed:107 ~k:25 in
  Test.make_grouped ~name:"lp-engine"
    [ Test.make ~name:"sparse-k25"
        (Staged.stage (fun () ->
             ignore (Lp_relax.solve ~engine:`Sparse ~objective:Lp_relax.Maxmin p25)));
      Test.make ~name:"sparse-lu-k25"
        (Staged.stage (fun () ->
             ignore
               (Lp_relax.solve ~engine:`Sparse ~backend:Dls_lp.Backend.Sparse
                  ~objective:Lp_relax.Maxmin p25)));
      Test.make ~name:"dense-k25"
        (Staged.stage (fun () ->
             ignore (Lp_relax.solve ~engine:`Dense ~objective:Lp_relax.Maxmin p25))) ]

let extension_tests =
  (* Kernels of the beyond-the-paper extensions. *)
  let platform = Dls_core.Problem.platform (problem_of ~seed:108 ~k:8) in
  let apps =
    [ { Pipeline.source = 0; payoff = 1.0;
        stages =
          [ { Pipeline.work = 1.0; expansion = 2.0 };
            { Pipeline.work = 4.0; expansion = 0.0 } ] } ]
  in
  let gadget = Reduction.build (Dls_graph.Graph.cycle 5) in
  Test.make_grouped ~name:"extensions"
    [ Test.make ~name:"pipeline-2stage-k8"
        (Staged.stage (fun () -> ignore (Pipeline.solve platform apps)));
      Test.make ~name:"mip-gadget-c5"
        (Staged.stage (fun () -> ignore (Mip.solve gadget))) ]

let substrate_tests =
  (* Cross-cutting kernels: schedule reconstruction (Section 3.2) and
     the flow-level simulator used for validation. *)
  let p = problem_of ~seed:106 ~k:10 in
  let alloc = Greedy.solve p in
  let exact = Schedule.exact_of_float alloc in
  Test.make_grouped ~name:"substrate"
    [ Test.make ~name:"schedule-build-k10"
        (Staged.stage (fun () -> ignore (Schedule.build exact)));
      Test.make ~name:"flowsim-20periods-k10"
        (Staged.stage (fun () ->
             ignore (Dls_flowsim.Simulator.run ~periods:20 p alloc)));
      Test.make ~name:"feasibility-check-k10"
        (Staged.stage (fun () -> ignore (Allocation.check p alloc))) ]

let resilience_tests =
  (* Kernels of the resilience experiment: the simulator's fault path
     (re-equilibration at every event) and the two cheap repair rungs. *)
  let pr = problem_of ~seed:109 ~k:10 in
  let p = Problem.platform pr in
  let a = Greedy.solve pr in
  let plan =
    Dls_flowsim.Faults.random ~seed:110 ~horizon:20.0 ~link_rate:0.3
      ~cluster_rate:0.15 p
  in
  let payoffs =
    Array.init (Problem.num_clusters pr) (fun c -> Problem.payoff pr c)
  in
  let dpr =
    Problem.make (Dls_flowsim.Faults.degraded_at p plan ~time:20.0) ~payoffs
  in
  Test.make_grouped ~name:"resilience"
    [ Test.make ~name:"flowsim-faulted-20periods-k10"
        (Staged.stage (fun () ->
             ignore (Dls_flowsim.Simulator.run ~periods:20 ~faults:plan pr a)));
      Test.make ~name:"repair-rescale-k10"
        (Staged.stage (fun () -> ignore (Repair.rescale dpr a)));
      Test.make ~name:"repair-refine-k10"
        (Staged.stage (fun () ->
             ignore (Repair.run_stage Repair.Refine dpr a))) ]

let dynsim_tests =
  (* Kernels of the event-driven simulator: heap churn at queue depth
     1k and one full small replay (arrivals, re-plans, completions). *)
  let module Heap = Dls_dynsim.Event_heap in
  let p = problem_of ~seed:113 ~k:6 in
  let platform = Problem.platform p in
  let wl =
    Dls_dynsim.Workload.synthetic ~seed:114 ~jobs:10 ~rate:0.5 ~clusters:6 ()
  in
  Test.make_grouped ~name:"dynsim"
    [ Test.make ~name:"event-heap-push-pop-1k"
        (Staged.stage (fun () ->
             let h = Heap.create () in
             for i = 0 to 999 do
               Heap.push h ~time:(float_of_int ((i * 7919) mod 1000)) i
             done;
             while not (Heap.is_empty h) do
               ignore (Heap.pop h)
             done));
      Test.make ~name:"dynamic-replay-10jobs-k6"
        (Staged.stage (fun () -> ignore (Dls_dynsim.Dynamic.run platform wl))) ]

let run_benchmarks () =
  Format.printf "@.=== Bechamel micro-benchmarks ===@.@.";
  let cfg = Benchmark.cfg ~limit:120 ~quota:(Time.second 1.5) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let groups =
    [ table1_tests; fig5_tests; fig6_tests; fig7_tests; substrate_tests;
      engine_tests; extension_tests; resilience_tests; dynsim_tests ]
  in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] group in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
      List.iter
        (fun name ->
          let result = Hashtbl.find results name in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some (t :: _) -> t
            | Some [] | None -> Float.nan
          in
          let r2 =
            match Analyze.OLS.r_square result with Some r -> r | None -> Float.nan
          in
          Format.printf "%-32s %12.1f ns/run   (r² = %.3f)@." name estimate r2)
        (List.sort compare names))
    groups

(* --quick: the smoke-alias entry point — a tiny fig6 run plus a small
   warm-vs-cold series, skipping the bechamel sweeps. *)
let quick () =
  Format.printf "=== Quick smoke run ===@.@.";
  Format.printf "%a@." E.Report.pp_table
    (E.Fig6.table (E.Fig6.run ~ks:[ 6 ] ~per_k:1 ()));
  lprr_warm_vs_cold ~ks:[ 8 ] ~per_k:1 ();
  lp_scale_series ~ks:[ 25 ] ();
  daemon_series ~ks:[ 6 ] ();
  Format.printf "done.@."

(* --trace/--metrics/--log/--log-level/--flight/--telemetry/--publish:
   same observability sinks as the CLI — Chrome trace, JSONL metrics
   dump, structured log, flight recorder and the live Prometheus /
   snapshot-delta exporters.  Left off, every subsystem stays in its
   free disabled state, so the timing series are unperturbed. *)
let flag_value name =
  let r = ref None in
  Array.iteri
    (fun i a -> if String.equal a name && i + 1 < Array.length Sys.argv then
        r := Some Sys.argv.(i + 1))
    Sys.argv;
  !r

let () =
  (* --debug surfaces the solver's per-solve instrumentation lines
     (warm/cold tag, pivots, reinversions, wall-clock). *)
  if Array.exists (String.equal "--debug") Sys.argv then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  (match
     ( flag_value "--trace", flag_value "--metrics", flag_value "--log",
       flag_value "--flight", flag_value "--telemetry", flag_value "--publish" )
   with
  | None, None, None, None, None, None -> ()
  | trace, metrics, log, flight, telemetry, publish ->
    let log_level =
      Option.bind (flag_value "--log-level") Dls_obs.Log.level_of_name
    in
    let telemetry =
      Option.map
        (fun s ->
          match Dls_obs.Publish.addr_of_string s with
          | Ok a -> a
          | Error msg ->
            Format.eprintf "%s@." msg;
            exit 2)
        telemetry
    in
    Dls_obs.Obs.configure ?trace ?metrics ?log
      ~log_level:(Option.value log_level ~default:Dls_obs.Log.Info)
      ?flight ?telemetry ?publish ();
    at_exit Dls_obs.Obs.finalize);
  if Array.exists (String.equal "--quick") Sys.argv then quick ()
  else if Array.exists (String.equal "--warm") Sys.argv then
    (* Just the warm-vs-cold LPRR acceptance series. *)
    lprr_warm_vs_cold ()
  else if Array.exists (String.equal "--lp-scale") Sys.argv then
    (* Just the dense-vs-sparse LP backend scaling series. *)
    lp_scale_series ()
  else if Array.exists (String.equal "--campaign") Sys.argv then
    (* Just the campaign-runner scaling series. *)
    campaign_throughput ()
  else if Array.exists (String.equal "--resilience") Sys.argv then
    (* Just the fault-simulation + repair-ladder series. *)
    resilience_series ()
  else if Array.exists (String.equal "--dynsim") Sys.argv then
    (* Just the event-loop throughput + re-plan latency series. *)
    dynsim_series ()
  else if Array.exists (String.equal "--daemon-load") Sys.argv then begin
    (* Just the daemon load benchmark (baseline vs warm configuration).
       --load-secs / --load-clients override the per-mode duration and
       client count (the CI smoke runs a short, small version). *)
    let fv name conv default =
      match flag_value name with Some s -> conv s | None -> default
    in
    daemon_load_series
      ~k:(fv "--load-k" int_of_string 24)
      ~clients:(fv "--load-clients" int_of_string 8)
      ~duration_s:(fv "--load-secs" float_of_string 5.0)
      ()
  end
  else if Array.exists (String.equal "--daemon") Sys.argv then
    (* Just the deadline-budgeted daemon solve ladder series. *)
    daemon_series ()
  else begin
    reproduction ();
    lprr_warm_vs_cold ();
    lp_scale_series ();
    campaign_throughput ();
    resilience_series ();
    dynsim_series ();
    daemon_series ();
    run_benchmarks ();
    Format.printf "@.done.@."
  end
